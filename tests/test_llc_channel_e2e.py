"""End-to-end LLC covert-channel transmissions (§III / §V)."""

import pytest

from repro.core.channel import ChannelDirection
from repro.core.llc_channel import (
    EvictionStrategy,
    LLCChannel,
    LLCChannelConfig,
)
from repro.core.llc_channel.protocol import (
    CpuEndpoint,
    GpuEndpoint,
    ProtocolTuning,
    derive_t_data_fs,
)
from repro.core.llc_channel.plan import Role


def test_gpu_to_cpu_transmission_accurate():
    result = LLCChannel(LLCChannelConfig()).transmit(n_bits=64, seed=21)
    assert result.error_rate <= 0.05
    assert result.bandwidth_kbps > 50


def test_cpu_to_gpu_transmission_accurate():
    config = LLCChannelConfig(direction=ChannelDirection.CPU_TO_GPU)
    result = LLCChannel(config).transmit(n_bits=48, seed=21)
    assert result.error_rate <= 0.15
    assert result.bandwidth_kbps > 30


def test_explicit_payload_is_recovered():
    payload = [1, 1, 0, 1, 0, 0, 0, 1] * 4
    result = LLCChannel(LLCChannelConfig(system_effects=False)).transmit(
        bits=payload, seed=4
    )
    assert result.sent == payload
    assert result.received == payload


def test_quiet_system_is_error_free():
    result = LLCChannel(LLCChannelConfig(system_effects=False)).transmit(
        n_bits=64, seed=8
    )
    assert result.error_rate == 0.0


def test_strategies_order_bandwidth():
    """Fig. 7 shape: precise > llc-only > full-clear."""
    bandwidths = {}
    for strategy, bits in [
        (EvictionStrategy.PRECISE_L3, 48),
        (EvictionStrategy.LLC_ONLY, 48),
        (EvictionStrategy.FULL_L3_CLEAR, 12),
    ]:
        result = LLCChannel(
            LLCChannelConfig(strategy=strategy, system_effects=False)
        ).transmit(n_bits=bits, seed=5)
        bandwidths[strategy] = result.bandwidth_kbps
    assert (
        bandwidths[EvictionStrategy.PRECISE_L3]
        > bandwidths[EvictionStrategy.LLC_ONLY]
        > bandwidths[EvictionStrategy.FULL_L3_CLEAR]
    )
    # The naive strategy is at least an order of magnitude slower.
    assert bandwidths[EvictionStrategy.PRECISE_L3] > (
        8 * bandwidths[EvictionStrategy.FULL_L3_CLEAR]
    )


def test_redundant_sets_cost_some_bandwidth():
    one = LLCChannel(
        LLCChannelConfig(n_sets_per_role=1, system_effects=False)
    ).transmit(n_bits=48, seed=6)
    two = LLCChannel(
        LLCChannelConfig(n_sets_per_role=2, system_effects=False)
    ).transmit(n_bits=48, seed=6)
    assert one.error_rate <= 0.1 and two.error_rate <= 0.1
    assert two.bandwidth_kbps < one.bandwidth_kbps * 1.6  # same ballpark


def test_result_metadata(model_config):
    result = LLCChannel(LLCChannelConfig()).transmit(n_bits=16, seed=7)
    assert result.meta["strategy"] == "precise-l3"
    assert result.meta["n_sets_per_role"] == 2
    assert result.meta["seed"] == 7
    assert result.n_bits == 16
    assert result.elapsed_s > 0
    assert "kb/s" in result.summary()


def test_runs_are_reproducible_per_seed():
    a = LLCChannel(LLCChannelConfig()).transmit(n_bits=24, seed=9)
    b = LLCChannel(LLCChannelConfig()).transmit(n_bits=24, seed=9)
    assert a.sent == b.sent
    assert a.received == b.received
    assert a.elapsed_fs == b.elapsed_fs


def test_different_seeds_differ():
    a = LLCChannel(LLCChannelConfig()).transmit(n_bits=24, seed=1)
    b = LLCChannel(LLCChannelConfig()).transmit(n_bits=24, seed=2)
    assert a.sent != b.sent or a.elapsed_fs != b.elapsed_fs


def test_full_scale_machine_also_works():
    from repro.config import kaby_lake

    channel = LLCChannel(
        LLCChannelConfig(system_effects=False), soc_config=kaby_lake()
    )
    result = channel.transmit(n_bits=16, seed=3)
    assert result.error_rate <= 0.15


# ----------------------------------------------------------------------
# Endpoint-level behaviour (driven inside a session)


@pytest.fixture(scope="module")
def quiet_session():
    return LLCChannel(LLCChannelConfig(system_effects=False)).build_session(seed=31)


def test_cpu_endpoint_calibration_tightens_threshold(quiet_session):
    session = quiet_session
    endpoint = CpuEndpoint(session.spy, session.plan.cpu, session.tuning)
    analytic = endpoint._threshold_cycles
    calibrated = session.soc.engine.run_until_complete(
        session.soc.engine.process(endpoint.calibrate())
    )
    assert calibrated > 0
    assert endpoint._threshold_cycles == calibrated
    assert 0.2 * analytic < calibrated < 5 * analytic


def test_cpu_endpoint_probe_detects_gpu_prime(quiet_session):
    session = quiet_session
    soc = session.soc
    endpoint = CpuEndpoint(session.spy, session.plan.cpu, session.tuning)

    def scenario():
        yield from endpoint.calibrate()
        yield from endpoint.prime(Role.DATA)
        quiet = yield from endpoint.probe(Role.DATA)
        # Evict the CPU's lines exactly as a GPU prime would.
        for location in session.plan.gpu.roles[Role.DATA].locations:
            for paddr in session.plan.gpu.roles[Role.DATA].prime[location]:
                soc.llc.access(paddr)
                for caches in soc.cpu_caches:
                    caches.invalidate(paddr)
        # Back-invalidate the CPU copies of its own evicted lines.
        for location in session.plan.cpu.roles[Role.DATA].locations:
            for paddr in session.plan.cpu.roles[Role.DATA].prime[location]:
                if not soc.llc.contains(paddr):
                    for caches in soc.cpu_caches:
                        caches.invalidate(paddr)
        primed = yield from endpoint.probe(Role.DATA)
        return quiet, primed

    quiet, primed = soc.engine.run_until_complete(soc.engine.process(scenario()))
    assert quiet == [False, False]
    assert primed == [True, True]


def test_t_data_derivation_uses_sender_costs(quiet_session):
    session = quiet_session
    endpoint = CpuEndpoint(session.spy, session.plan.cpu, session.tuning)
    tuning = ProtocolTuning()
    derived = derive_t_data_fs(endpoint, tuning)
    assert derived > endpoint.estimate_prime_fs(Role.DATA)


def test_gpu_endpoint_estimates_scale_with_strategy():
    fast = LLCChannel(
        LLCChannelConfig(system_effects=False)
    ).build_session(seed=33)
    slow = LLCChannel(
        LLCChannelConfig(
            strategy=EvictionStrategy.FULL_L3_CLEAR, system_effects=False
        )
    ).build_session(seed=33)
    fast_ep = GpuEndpoint(fast._estimation_ctx(), fast.plan.gpu, fast.tuning)
    slow_ep = GpuEndpoint(slow._estimation_ctx(), slow.plan.gpu, slow.tuning)
    assert slow_ep.estimate_prime_fs(Role.DATA) > 10 * fast_ep.estimate_prime_fs(
        Role.DATA
    )
