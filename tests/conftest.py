"""Shared fixtures for the test suite."""

import pytest

from repro.config import kaby_lake, kaby_lake_model
from repro.soc.machine import SoC


@pytest.fixture
def full_config():
    """The paper's published full-scale geometry."""
    return kaby_lake(seed=7)


@pytest.fixture
def model_config():
    """The capacity-scaled machine used by the channel harnesses."""
    return kaby_lake_model(seed=7, scale=16)


@pytest.fixture
def soc(full_config):
    """A quiet full-scale SoC (no noise processes running)."""
    return SoC(full_config)


@pytest.fixture
def model_soc(model_config):
    """A quiet model-scale SoC."""
    return SoC(model_config)


def run(soc_instance, generator):
    """Drive a generator to completion on a SoC's engine."""
    process = soc_instance.engine.process(generator)
    return soc_instance.engine.run_until_complete(process)


@pytest.fixture
def drive():
    """Helper: run(soc, generator) -> return value."""
    return run
