"""FEC framing and channel-capacity extensions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.capacity import (
    CapacityReport,
    binary_entropy,
    bsc_capacity,
    capacity_of,
)
from repro.core.channel import ChannelDirection, ChannelResult
from repro.core.framing import (
    FrameReport,
    crc8,
    decode_frame,
    encode_frame,
    frame_overhead_ratio,
    hamming_decode,
    hamming_decode_word,
    hamming_encode,
    hamming_encode_nibble,
)
from repro.errors import AttackError
from repro.sim.rng import RngStreams

nibbles = st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4)


def test_crc8_known_vector():
    assert crc8(b"123456789") == 0xF4  # CRC-8/ATM check value


def test_crc8_detects_change():
    assert crc8(b"hello") != crc8(b"hellp")


@given(nibbles)
def test_hamming_roundtrip_clean(nibble):
    word = hamming_encode_nibble(nibble)
    decoded, corrected = hamming_decode_word(word)
    assert decoded == nibble
    assert not corrected


@given(nibbles, st.integers(min_value=0, max_value=6))
def test_hamming_corrects_any_single_flip(nibble, position):
    word = hamming_encode_nibble(nibble)
    word[position] ^= 1
    decoded, corrected = hamming_decode_word(word)
    assert decoded == nibble
    assert corrected


def test_hamming_encode_pads_tail():
    encoded = hamming_encode([1, 0, 1])  # 3 bits -> one padded codeword
    assert len(encoded) == 7
    decoded, _ = hamming_decode(encoded)
    assert decoded[:3] == [1, 0, 1]
    assert decoded[3] == 0


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=64))
def test_hamming_stream_roundtrip(bits):
    encoded = hamming_encode(bits)
    decoded, corrections = hamming_decode(encoded)
    assert decoded[: len(bits)] == list(bits)
    assert corrections == 0


def test_hamming_word_length_validation():
    with pytest.raises(AttackError):
        hamming_encode_nibble([1, 0, 1])
    with pytest.raises(AttackError):
        hamming_decode_word([1] * 6)


@given(st.binary(min_size=0, max_size=40))
def test_frame_roundtrip(payload):
    report = decode_frame(encode_frame(payload))
    assert report.delivered
    assert report.payload == payload
    assert report.corrected_bits == 0


def test_frame_survives_scattered_errors():
    payload = b"covert data needs error correction"
    bits = encode_frame(payload)
    # One flip per codeword-aligned stretch: all correctable.
    for position in range(3, len(bits), 21):
        bits[position] ^= 1
    report = decode_frame(bits)
    assert report.delivered
    assert report.payload == payload
    assert report.corrected_bits >= len(bits) // 30


def test_frame_detects_uncorrectable_corruption():
    payload = b"x" * 10
    bits = encode_frame(payload)
    # Two flips in the same codeword defeat Hamming(7,4); CRC must catch it.
    bits[0] ^= 1
    bits[1] ^= 1
    report = decode_frame(bits)
    assert not report.crc_ok
    assert not report.delivered
    # Regression: a frame that fails its CRC must not expose the corrupt
    # bytes as if they were the payload.
    assert report.payload is None


@given(st.binary(min_size=1, max_size=24), st.data())
def test_frame_corrupt_payload_never_leaks(payload, data):
    """Any CRC-failing decode yields payload None and delivered False."""
    bits = encode_frame(payload)
    # Double-flip inside one codeword: miscorrection guaranteed.
    word = data.draw(st.integers(min_value=0, max_value=len(bits) // 7 - 1))
    positions = data.draw(
        st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=2,
                 unique=True)
    )
    for offset in positions:
        bits[word * 7 + offset] ^= 1
    report = decode_frame(bits)
    if not report.crc_ok:
        assert report.payload is None
        assert not report.delivered


@given(st.binary(min_size=0, max_size=32), st.data())
def test_frame_survives_any_single_flip(payload, data):
    """Property: one flipped channel bit anywhere is always corrected."""
    bits = encode_frame(payload)
    position = data.draw(st.integers(min_value=0, max_value=len(bits) - 1))
    bits[position] ^= 1
    report = decode_frame(bits)
    assert report.delivered
    assert report.crc_ok
    assert report.payload == payload
    assert report.corrected_bits == 1


def test_frame_truncated_input():
    report = decode_frame([1, 0, 1])
    assert report.payload is None
    assert not report.delivered


def test_frame_overhead_above_hamming_rate():
    assert frame_overhead_ratio(16) >= 7 / 4
    with pytest.raises(AttackError):
        frame_overhead_ratio(0)


def test_frame_rejects_oversized_payload():
    with pytest.raises(AttackError):
        encode_frame(bytes(70000))


def test_frame_over_simulated_noisy_channel():
    """End-to-end: FEC turns a few-percent channel into clean delivery."""
    rng = RngStreams(5).stream("noise")
    payload = b"exfiltrated secret"
    bits = encode_frame(payload)
    flipped = [bit ^ (1 if rng.random() < 0.01 else 0) for bit in bits]
    report = decode_frame(flipped)
    # At 1% BER most frames decode cleanly; allow the CRC to veto rest.
    if report.delivered:
        assert report.payload == payload


# ----------------------------------------------------------------------
# Capacity


def test_binary_entropy_endpoints():
    assert binary_entropy(0.0) == 0.0
    assert binary_entropy(1.0) == 0.0
    assert binary_entropy(0.5) == pytest.approx(1.0)


def test_binary_entropy_symmetry():
    assert binary_entropy(0.1) == pytest.approx(binary_entropy(0.9))


def test_bsc_capacity_known_points():
    assert bsc_capacity(0.0) == 1.0
    assert bsc_capacity(0.5) == pytest.approx(0.0)
    assert bsc_capacity(0.02) == pytest.approx(1 - binary_entropy(0.02))


@given(st.floats(min_value=0.0, max_value=0.5))
def test_capacity_monotone_in_error(p):
    assert bsc_capacity(p) >= bsc_capacity(min(0.5, p + 0.01)) - 1e-9


def test_entropy_range_validation():
    with pytest.raises(AttackError):
        binary_entropy(1.5)


@pytest.mark.parametrize("rate", [-0.01, 1.01, 2.0, -5.0])
def test_capacity_range_validation(rate):
    """Regression: ``bsc_capacity`` used to silently clamp an
    out-of-range error rate while ``binary_entropy`` raised — both must
    reject it, an impossible rate is always an upstream bug."""
    with pytest.raises(AttackError):
        bsc_capacity(rate)


def test_capacity_report_from_result():
    sent = [1, 0] * 50
    received = list(sent)
    received[7] ^= 1
    received[49] ^= 1
    result = ChannelResult(
        direction=ChannelDirection.GPU_TO_CPU,
        sent=sent,
        received=received,
        elapsed_fs=10**12,
    )
    report = capacity_of(result)
    assert isinstance(report, CapacityReport)
    assert report.information_bps < result.bandwidth_bps
    assert report.information_bps > 0.7 * result.bandwidth_bps
    assert "information" in report.summary()


def test_paper_headline_capacities():
    """The §V numbers as capacity: 120 kb/s @2% and 400 kb/s @0.8%."""
    llc = CapacityReport(raw_bandwidth_bps=120e3, error_rate=0.02)
    contention = CapacityReport(raw_bandwidth_bps=400e3, error_rate=0.008)
    assert llc.information_kbps == pytest.approx(120 * bsc_capacity(0.02) / 1, rel=1e-6)
    assert contention.information_kbps > llc.information_kbps
