"""Equivalence suite for the vectorized lockstep batch engine.

The serial per-trial engine is the bit-exact oracle (``REPRO_BATCH=0``
contract, mirroring ``REPRO_FASTPATH=0``): every outcome the batch tier
produces must equal the oracle's byte for byte — cold starts, warm
checkpoint forks, ragged slot counts, divergence ejections, GPU trojans
and parallel worker pools included.  The kernel may *refuse* work (eject
lanes, leave groups to the serial path); it may never *change* it.

The suite runs meaningfully under both gate settings: with the batch
tier on it pins kernel-vs-oracle equality, with ``REPRO_BATCH=0`` it
pins that the contract plumbing itself (gates, cache keys, executor
routing) degrades to the plain serial path.
"""

import os

import pytest

from repro.analysis import contention_sweep, probe_sweep
from repro.errors import ConfigError
from repro.exec.cache import ResultCache
from repro.exec.executor import TrialExecutor, TrialSpec, PrefixSpec
from repro.exec.fingerprint import engine_knobs
from repro.exec.seeds import canonical_repr, derive_seed
from repro.obs.ledger import format_record, make_record
from repro.obs.recorder import recorder
from repro.obs.telemetry import bench_run_record
from repro.sim.batch import engine as batch_engine
from repro.sim.batch import gate as batch_gate
from repro.sim.batch.contention import ContentionKernel
from repro.sim.batch.kernels import ProbeSweepKernel, kernel_for


def _serial(params, seed):
    return probe_sweep.probe_trial(dict(params), seed)


def _kernel_run(trials):
    return ProbeSweepKernel().run([(dict(p), s) for p, s in trials])


def _assert_lockstep_matches_oracle(trials, allow_ejected=0):
    outcomes, sim = _kernel_run(trials)
    ejected = sum(1 for o in outcomes if o is None)
    assert ejected <= allow_ejected, f"{ejected} lanes ejected"
    for (params, seed), outcome in zip(trials, outcomes):
        if outcome is None:
            continue
        assert outcome == _serial(params, seed)
    assert sim["events_executed"] > 0


# ----------------------------------------------------------------------
# Kernel vs oracle, per shape


def test_cold_cpu_equivalence():
    _assert_lockstep_matches_oracle([({}, s) for s in range(7, 15)])


def test_gpu_trojan_equivalence():
    _assert_lockstep_matches_oracle(
        [({"trojan": "gpu"}, s) for s in range(5, 11)]
    )


def test_llc_hit_shape_equivalence():
    # 6 spy + 6 trojan lines per 8-way set leaves room for LLC hits —
    # exercises the touch path the self-thrashing default never takes.
    _assert_lockstep_matches_oracle(
        [
            ({"spy_lines_per_set": 6, "trojan_lines_per_set": 6}, s)
            for s in range(3, 9)
        ]
    )


def test_small_burst_no_elision_equivalence():
    # Trojan bursts smaller than the private-cache ways keep the full
    # modeled L1/L2 (the elision precondition fails) and hit in them.
    _assert_lockstep_matches_oracle(
        [({"trojan_lines_per_set": 3}, s) for s in range(2, 8)]
    )


def test_same_core_equivalence():
    _assert_lockstep_matches_oracle(
        [({"trojan_core": 0, "spy_core": 0}, s) for s in range(11, 16)]
    )


def test_ragged_slot_counts_equivalence():
    _assert_lockstep_matches_oracle(
        [({"n_slots": 4 + (s % 7)}, s) for s in range(30, 40)]
    )


def test_divergence_lanes_ejected_others_complete():
    trials = [
        ({"divergence_slot": 3 if s % 3 == 0 else None}, s)
        for s in range(9, 18)
    ]
    outcomes, _sim = _kernel_run(trials)
    for (params, _seed), outcome in zip(trials, outcomes):
        if params["divergence_slot"] is not None:
            assert outcome is None  # ejected for the serial path to raise
        else:
            assert outcome is not None
    _assert_lockstep_matches_oracle(
        [t for t in trials if t[0]["divergence_slot"] is None]
    )


def test_warm_fork_equivalence():
    doc = probe_sweep.prepare_probe_prefix({"n_slots": 4}, 77)
    trials = [
        ({"n_slots": ns, "_ckpt_state": doc}, 77) for ns in (6, 8, 10, 7)
    ]
    _assert_lockstep_matches_oracle(trials)


def test_jitter_unsupported_stays_serial():
    kernel = kernel_for(probe_sweep.probe_trial)
    assert kernel is not None
    assert not kernel.supports({"dram_jitter_ns": 1.5})
    assert kernel.supports({})


# ----------------------------------------------------------------------
# Executor integration


def _sweep_specs():
    prefix = PrefixSpec(
        fn=probe_sweep.prepare_probe_prefix, params={"n_slots": 3}, seed=77
    )
    specs = [TrialSpec(fn=probe_sweep.probe_trial, params={}, seed=100 + s)
             for s in range(6)]
    specs += [
        TrialSpec(
            fn=probe_sweep.probe_trial,
            params={"n_slots": ns},
            seed=77,
            prefix=prefix,
        )
        for ns in (5, 7, 9)
    ]
    specs.append(
        TrialSpec(fn=probe_sweep.probe_trial, params={"divergence_slot": 2},
                  seed=5)
    )
    specs.append(
        TrialSpec(fn=probe_sweep.probe_trial, params={"dram_jitter_ns": 1.0},
                  seed=3)
    )
    return specs


def _run_sweep(workers, batch):
    with batch_gate.forced(batch):
        report = TrialExecutor(workers=workers).run(_sweep_specs())
    return [(o.index, o.kind, o.result) for o in report.outcomes]


def test_executor_batch_tier_equivalence_serial():
    assert _run_sweep(0, True) == _run_sweep(0, False)


def test_executor_batch_tier_equivalence_parallel():
    baseline = _run_sweep(0, False)
    assert _run_sweep(2, True) == baseline
    assert _run_sweep(2, False) == baseline


# ----------------------------------------------------------------------
# Property test: random sweeps, serial vs batched vs batched + forked

hyp = pytest.importorskip("hypothesis")
given, settings, HealthCheck = hyp.given, hyp.settings, hyp.HealthCheck
st = hyp.strategies


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data=st.data(),
    n_trials=st.integers(min_value=1, max_value=10),
    width=st.integers(min_value=1, max_value=16),
    workers=st.sampled_from([0, 2, 8]),
    use_prefix=st.booleans(),
    gpu=st.booleans(),
)
def test_random_sweeps_property(data, n_trials, width, workers, use_prefix, gpu):
    base = {"trojan": "gpu"} if gpu else {}
    prefix = (
        PrefixSpec(
            fn=probe_sweep.prepare_probe_prefix,
            params=dict(base, n_slots=2),
            seed=41,
        )
        if use_prefix
        else None
    )
    specs = []
    for i in range(n_trials):
        n_slots = data.draw(st.integers(min_value=3, max_value=6))
        div = data.draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=n_slots - 1))
        )
        params = dict(base, n_slots=n_slots)
        if div is not None:
            params["divergence_slot"] = div
        specs.append(
            TrialSpec(
                fn=probe_sweep.probe_trial,
                params=params,
                seed=41 if prefix is not None else 500 + i,
                prefix=prefix,
            )
        )

    def run(batch):
        previous = os.environ.get("REPRO_BATCH_WIDTH")
        os.environ["REPRO_BATCH_WIDTH"] = str(width)
        try:
            with batch_gate.forced(batch):
                report = TrialExecutor(workers=workers).run(specs)
        finally:
            if previous is None:
                os.environ.pop("REPRO_BATCH_WIDTH", None)
            else:
                os.environ["REPRO_BATCH_WIDTH"] = previous
        return [(o.index, o.kind, o.result) for o in report.outcomes]

    assert run(True) == run(False)


# ----------------------------------------------------------------------
# Contention kernel vs oracle, per shape


def _contention_serial(params, seed):
    return contention_sweep.contention_trial(dict(params), seed=seed)


def _assert_contention_matches_oracle(trials, allow_ejected=0):
    outcomes, sim = ContentionKernel().run([(dict(p), s) for p, s in trials])
    ejected = sum(1 for o in outcomes if o is None)
    assert ejected <= allow_ejected, f"{ejected} lanes ejected"
    for (params, seed), outcome in zip(trials, outcomes):
        if outcome is None:
            continue
        assert outcome == _contention_serial(params, seed)
    assert sim["events_executed"] > 0


def test_contention_cold_gpu_equivalence():
    # Ragged slot counts and work-group counts in one lockstep group.
    _assert_contention_matches_oracle(
        [({"n_slots": 4 + (s % 3), "n_workgroups": 1 << (s % 4)}, 100 + s)
         for s in range(8)]
    )


def test_contention_cold_cpu_equivalence():
    _assert_contention_matches_oracle(
        [({"n_slots": 4, "n_workgroups": 1 << (s % 4), "trojan": "cpu"},
          200 + s)
         for s in range(6)]
    )


def test_contention_faults_equivalence():
    _assert_contention_matches_oracle(
        [({"n_slots": 4, "n_workgroups": 2, "fault_intensity": fi}, 300 + s)
         for s, fi in enumerate((0.0, 0.5, 1.0, 2.0))]
    )


def test_contention_warm_fork_equivalence():
    base = {"n_slots": 3, "n_workgroups": 2, "fault_intensity": 0.5}
    doc = contention_sweep.prepare_contention_prefix(dict(base), 9)
    _assert_contention_matches_oracle(
        [({**base, "n_slots": ns, "_ckpt_state": doc}, 9)
         for ns in (5, 7, 6, 8)]
    )


def test_contention_divergence_lanes_ejected():
    trials = [({"n_slots": 4, "n_workgroups": 2,
                "divergence_slot": 2 if s % 2 else None}, 400 + s)
              for s in range(6)]
    outcomes, _sim = ContentionKernel().run([(dict(p), s) for p, s in trials])
    for (params, _seed), outcome in zip(trials, outcomes):
        assert (outcome is None) == (params["divergence_slot"] is not None)
    _assert_contention_matches_oracle(
        [t for t in trials if t[0]["divergence_slot"] is None]
    )


def test_contention_jitter_unsupported_stays_serial():
    kernel = kernel_for(contention_sweep.contention_trial)
    assert kernel is not None
    assert not kernel.supports({"dram_jitter_ns": 1.5})
    assert kernel.supports({})


def _contention_specs():
    base = {"n_slots": 3, "n_workgroups": 2}
    prefix = PrefixSpec(
        fn=contention_sweep.prepare_contention_prefix,
        params=dict(base),
        seed=9,
    )
    specs = [
        TrialSpec(
            fn=contention_sweep.contention_trial,
            params={"n_slots": 4, "n_workgroups": 1 << (s % 3)},
            seed=600 + s,
        )
        for s in range(5)
    ]
    specs += [
        TrialSpec(
            fn=contention_sweep.contention_trial,
            params=dict(base, n_slots=ns),
            seed=9,
            prefix=prefix,
        )
        for ns in (5, 6)
    ]
    specs.append(
        TrialSpec(fn=contention_sweep.contention_trial,
                  params={"n_slots": 4, "divergence_slot": 1}, seed=7)
    )
    specs.append(
        TrialSpec(fn=contention_sweep.contention_trial,
                  params={"n_slots": 4, "dram_jitter_ns": 1.0}, seed=3)
    )
    return specs


def _run_contention_sweep(workers, batch):
    with batch_gate.forced(batch):
        report = TrialExecutor(workers=workers).run(_contention_specs())
    return [(o.index, o.kind, o.result) for o in report.outcomes]


def test_contention_executor_equivalence_serial():
    assert _run_contention_sweep(0, True) == _run_contention_sweep(0, False)


def test_contention_executor_equivalence_parallel():
    baseline = _run_contention_sweep(0, False)
    assert _run_contention_sweep(2, True) == baseline


# ----------------------------------------------------------------------
# Lane-width auto-tuning


def test_batch_width_env_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH_WIDTH", raising=False)
    assert batch_engine.batch_width() is None
    monkeypatch.setenv("REPRO_BATCH_WIDTH", "  ")
    assert batch_engine.batch_width() is None
    monkeypatch.setenv("REPRO_BATCH_WIDTH", "8")
    assert batch_engine.batch_width() == 8
    monkeypatch.setenv("REPRO_BATCH_WIDTH", "1")
    assert batch_engine.batch_width() == 1
    for bad in ("0", "-3", "x", "1.5", ""):
        if not bad:
            continue
        monkeypatch.setenv("REPRO_BATCH_WIDTH", bad)
        with pytest.raises(ConfigError, match="REPRO_BATCH_WIDTH"):
            batch_engine.batch_width()


def test_width_for_auto_tune_deterministic():
    kernel = kernel_for(contention_sweep.contention_trial)
    params = [{"n_slots": 4, "n_workgroups": wg} for wg in (1, 2, 4, 8)]
    width = batch_engine.width_for(kernel, params)
    assert width == batch_engine.width_for(kernel, params)
    assert batch_engine.MIN_WIDTH <= width <= batch_engine.DEFAULT_WIDTH
    # The width is the documented budget arithmetic, nothing hidden.
    footprint = max(kernel.lane_footprint_bytes(p) for p in params)
    assert width == max(
        batch_engine.MIN_WIDTH,
        min(batch_engine.DEFAULT_WIDTH,
            batch_engine.AUTO_WIDTH_BUDGET_BYTES // footprint),
    )
    # Footprints grow with the trial's state, so fatter lanes can only
    # narrow the width.
    assert kernel.lane_footprint_bytes(
        {"n_slots": 64, "n_workgroups": 8}
    ) > kernel.lane_footprint_bytes({"n_slots": 4, "n_workgroups": 1})


def test_executor_records_batch_plans(monkeypatch):
    specs = [TrialSpec(fn=contention_sweep.contention_trial,
                       params={"n_slots": 2}, seed=s) for s in range(6)]
    executor = TrialExecutor(workers=0)
    monkeypatch.setenv("REPRO_BATCH_WIDTH", "4")
    with batch_gate.forced(True):
        executor.run(specs)
    plans = executor.last_batch_plans
    assert plans
    assert all(p["source"] == "env" and p["width"] == 4 for p in plans)
    assert sum(p["lanes"] for p in plans) == 6
    assert all(p["kernel"] == ContentionKernel.fn_key for p in plans)

    monkeypatch.delenv("REPRO_BATCH_WIDTH", raising=False)
    with batch_gate.forced(True):
        executor.run(specs)
    auto_plans = executor.last_batch_plans
    assert auto_plans and all(p["source"] == "auto" for p in auto_plans)
    widths = [p["width"] for p in auto_plans]
    with batch_gate.forced(True):
        executor.run(specs)
    assert [p["width"] for p in executor.last_batch_plans] == widths


class _ListSink:
    def __init__(self):
        self.events = []

    def emit(self, name, ts_fs, track, args):
        self.events.append((name, track, args))


def test_batch_plan_trace_event(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH_WIDTH", raising=False)
    specs = [TrialSpec(fn=contention_sweep.contention_trial,
                       params={"n_slots": 2}, seed=s) for s in range(4)]
    sink = _ListSink()
    with recorder.recording(sink, allowlist=["batch.plan"]):
        with batch_gate.forced(True):
            TrialExecutor(workers=0).run(specs)
    plans = [args for name, _track, args in sink.events
             if name == "batch.plan"]
    assert plans
    assert plans[0]["source"] == "auto"
    assert plans[0]["width"] >= batch_engine.MIN_WIDTH
    assert plans[0]["lanes"] == 4


# ----------------------------------------------------------------------
# Property test: random contention sweeps across explicit widths


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data=st.data(),
    n_trials=st.integers(min_value=2, max_value=6),
    width=st.integers(min_value=1, max_value=16),
    workers=st.sampled_from([0, 2]),
    cpu_trojan=st.booleans(),
)
def test_contention_random_sweeps_property(
    data, n_trials, width, workers, cpu_trojan
):
    base = {"trojan": "cpu"} if cpu_trojan else {}
    specs = []
    for i in range(n_trials):
        params = dict(
            base,
            n_slots=data.draw(st.integers(min_value=2, max_value=4)),
            n_workgroups=data.draw(st.sampled_from([1, 2, 4])),
        )
        if data.draw(st.booleans()):
            params["fault_intensity"] = 1.0
        specs.append(
            TrialSpec(fn=contention_sweep.contention_trial, params=params,
                      seed=800 + i)
        )

    def run(batch):
        previous = os.environ.get("REPRO_BATCH_WIDTH")
        os.environ["REPRO_BATCH_WIDTH"] = str(width)
        try:
            with batch_gate.forced(batch):
                report = TrialExecutor(workers=workers).run(specs)
        finally:
            if previous is None:
                os.environ.pop("REPRO_BATCH_WIDTH", None)
            else:
                os.environ["REPRO_BATCH_WIDTH"] = previous
        return [(o.index, o.kind, o.result) for o in report.outcomes]

    assert run(True) == run(False)


# ----------------------------------------------------------------------
# Contract plumbing: gates, cache keys, record fields, seed fast paths


def test_engine_knobs_reflect_batch_gate():
    with batch_gate.forced(True):
        assert "batch=1" in engine_knobs()
    with batch_gate.forced(False):
        assert "batch=0" in engine_knobs()


def test_cache_key_separates_engine_paths(tmp_path):
    cache = ResultCache(tmp_path)
    with batch_gate.forced(True):
        on = cache.key_for(probe_sweep.probe_trial, {}, 7)
    with batch_gate.forced(False):
        off = cache.key_for(probe_sweep.probe_trial, {}, 7)
    assert on != off


def test_bench_record_engine_fields():
    record = bench_run_record(
        workers=0,
        wall_s=2.0,
        sim={"engines_created": 0, "events_executed": 100},
        engine="batched",
        batch_width=64,
    )
    assert record["engine"] == "batched"
    assert record["batch_width"] == 64
    # Omitted -> absent, so legacy artifacts keep their exact shape.
    bare = bench_run_record(workers=0, wall_s=1.0)
    assert "engine" not in bare and "batch_width" not in bare
    line = format_record(
        make_record(name="x", kind="bench", run=record, fingerprint="f" * 64)
    )
    assert "engine=batchedx64" in line


def test_bench_record_batch_width_source():
    record = bench_run_record(
        workers=0,
        wall_s=1.0,
        sim={"engines_created": 0, "events_executed": 10},
        engine="batched",
        batch_width=32,
        batch_width_source="auto",
    )
    assert record["batch_width_source"] == "auto"
    line = format_record(
        make_record(name="x", kind="bench", run=record, fingerprint="f" * 64)
    )
    assert "engine=batchedx32(auto)" in line
    # Omitted -> absent, so legacy artifacts keep their exact shape.
    bare = bench_run_record(workers=0, wall_s=1.0)
    assert "batch_width_source" not in bare


def test_payload_bits_matches_derive_seed():
    for seed in (0, 7, 2**62 + 12345):
        assert probe_sweep.payload_bits(seed, 40) == [
            derive_seed(seed, "payload", s) & 1 for s in range(40)
        ]


def test_derive_seed_fast_path_matches_canonical():
    import hashlib

    for args in ((7, "payload", 3), (0, "trial", 12), (41, "a", "b", 2)):
        material = canonical_repr(args)
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        want = int.from_bytes(digest[:8], "big") & (2**63 - 1)
        assert derive_seed(*args) == want
    # Non-primitive components take the canonical fallback.
    assert isinstance(derive_seed(7, 1.5, None, (1, 2)), int)
