"""Equivalence suite for the vectorized lockstep batch engine.

The serial per-trial engine is the bit-exact oracle (``REPRO_BATCH=0``
contract, mirroring ``REPRO_FASTPATH=0``): every outcome the batch tier
produces must equal the oracle's byte for byte — cold starts, warm
checkpoint forks, ragged slot counts, divergence ejections, GPU trojans
and parallel worker pools included.  The kernel may *refuse* work (eject
lanes, leave groups to the serial path); it may never *change* it.

The suite runs meaningfully under both gate settings: with the batch
tier on it pins kernel-vs-oracle equality, with ``REPRO_BATCH=0`` it
pins that the contract plumbing itself (gates, cache keys, executor
routing) degrades to the plain serial path.
"""

import os

import pytest

from repro.analysis import probe_sweep
from repro.exec.cache import ResultCache
from repro.exec.executor import TrialExecutor, TrialSpec, PrefixSpec
from repro.exec.fingerprint import engine_knobs
from repro.exec.seeds import canonical_repr, derive_seed
from repro.obs.ledger import format_record, make_record
from repro.obs.telemetry import bench_run_record
from repro.sim.batch import gate as batch_gate
from repro.sim.batch.kernels import ProbeSweepKernel, kernel_for


def _serial(params, seed):
    return probe_sweep.probe_trial(dict(params), seed)


def _kernel_run(trials):
    return ProbeSweepKernel().run([(dict(p), s) for p, s in trials])


def _assert_lockstep_matches_oracle(trials, allow_ejected=0):
    outcomes, sim = _kernel_run(trials)
    ejected = sum(1 for o in outcomes if o is None)
    assert ejected <= allow_ejected, f"{ejected} lanes ejected"
    for (params, seed), outcome in zip(trials, outcomes):
        if outcome is None:
            continue
        assert outcome == _serial(params, seed)
    assert sim["events_executed"] > 0


# ----------------------------------------------------------------------
# Kernel vs oracle, per shape


def test_cold_cpu_equivalence():
    _assert_lockstep_matches_oracle([({}, s) for s in range(7, 15)])


def test_gpu_trojan_equivalence():
    _assert_lockstep_matches_oracle(
        [({"trojan": "gpu"}, s) for s in range(5, 11)]
    )


def test_llc_hit_shape_equivalence():
    # 6 spy + 6 trojan lines per 8-way set leaves room for LLC hits —
    # exercises the touch path the self-thrashing default never takes.
    _assert_lockstep_matches_oracle(
        [
            ({"spy_lines_per_set": 6, "trojan_lines_per_set": 6}, s)
            for s in range(3, 9)
        ]
    )


def test_small_burst_no_elision_equivalence():
    # Trojan bursts smaller than the private-cache ways keep the full
    # modeled L1/L2 (the elision precondition fails) and hit in them.
    _assert_lockstep_matches_oracle(
        [({"trojan_lines_per_set": 3}, s) for s in range(2, 8)]
    )


def test_same_core_equivalence():
    _assert_lockstep_matches_oracle(
        [({"trojan_core": 0, "spy_core": 0}, s) for s in range(11, 16)]
    )


def test_ragged_slot_counts_equivalence():
    _assert_lockstep_matches_oracle(
        [({"n_slots": 4 + (s % 7)}, s) for s in range(30, 40)]
    )


def test_divergence_lanes_ejected_others_complete():
    trials = [
        ({"divergence_slot": 3 if s % 3 == 0 else None}, s)
        for s in range(9, 18)
    ]
    outcomes, _sim = _kernel_run(trials)
    for (params, _seed), outcome in zip(trials, outcomes):
        if params["divergence_slot"] is not None:
            assert outcome is None  # ejected for the serial path to raise
        else:
            assert outcome is not None
    _assert_lockstep_matches_oracle(
        [t for t in trials if t[0]["divergence_slot"] is None]
    )


def test_warm_fork_equivalence():
    doc = probe_sweep.prepare_probe_prefix({"n_slots": 4}, 77)
    trials = [
        ({"n_slots": ns, "_ckpt_state": doc}, 77) for ns in (6, 8, 10, 7)
    ]
    _assert_lockstep_matches_oracle(trials)


def test_jitter_unsupported_stays_serial():
    kernel = kernel_for(probe_sweep.probe_trial)
    assert kernel is not None
    assert not kernel.supports({"dram_jitter_ns": 1.5})
    assert kernel.supports({})


# ----------------------------------------------------------------------
# Executor integration


def _sweep_specs():
    prefix = PrefixSpec(
        fn=probe_sweep.prepare_probe_prefix, params={"n_slots": 3}, seed=77
    )
    specs = [TrialSpec(fn=probe_sweep.probe_trial, params={}, seed=100 + s)
             for s in range(6)]
    specs += [
        TrialSpec(
            fn=probe_sweep.probe_trial,
            params={"n_slots": ns},
            seed=77,
            prefix=prefix,
        )
        for ns in (5, 7, 9)
    ]
    specs.append(
        TrialSpec(fn=probe_sweep.probe_trial, params={"divergence_slot": 2},
                  seed=5)
    )
    specs.append(
        TrialSpec(fn=probe_sweep.probe_trial, params={"dram_jitter_ns": 1.0},
                  seed=3)
    )
    return specs


def _run_sweep(workers, batch):
    with batch_gate.forced(batch):
        report = TrialExecutor(workers=workers).run(_sweep_specs())
    return [(o.index, o.kind, o.result) for o in report.outcomes]


def test_executor_batch_tier_equivalence_serial():
    assert _run_sweep(0, True) == _run_sweep(0, False)


def test_executor_batch_tier_equivalence_parallel():
    baseline = _run_sweep(0, False)
    assert _run_sweep(2, True) == baseline
    assert _run_sweep(2, False) == baseline


# ----------------------------------------------------------------------
# Property test: random sweeps, serial vs batched vs batched + forked

hyp = pytest.importorskip("hypothesis")
given, settings, HealthCheck = hyp.given, hyp.settings, hyp.HealthCheck
st = hyp.strategies


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data=st.data(),
    n_trials=st.integers(min_value=1, max_value=10),
    width=st.integers(min_value=1, max_value=16),
    workers=st.sampled_from([0, 2, 8]),
    use_prefix=st.booleans(),
    gpu=st.booleans(),
)
def test_random_sweeps_property(data, n_trials, width, workers, use_prefix, gpu):
    base = {"trojan": "gpu"} if gpu else {}
    prefix = (
        PrefixSpec(
            fn=probe_sweep.prepare_probe_prefix,
            params=dict(base, n_slots=2),
            seed=41,
        )
        if use_prefix
        else None
    )
    specs = []
    for i in range(n_trials):
        n_slots = data.draw(st.integers(min_value=3, max_value=6))
        div = data.draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=n_slots - 1))
        )
        params = dict(base, n_slots=n_slots)
        if div is not None:
            params["divergence_slot"] = div
        specs.append(
            TrialSpec(
                fn=probe_sweep.probe_trial,
                params=params,
                seed=41 if prefix is not None else 500 + i,
                prefix=prefix,
            )
        )

    def run(batch):
        previous = os.environ.get("REPRO_BATCH_WIDTH")
        os.environ["REPRO_BATCH_WIDTH"] = str(width)
        try:
            with batch_gate.forced(batch):
                report = TrialExecutor(workers=workers).run(specs)
        finally:
            if previous is None:
                os.environ.pop("REPRO_BATCH_WIDTH", None)
            else:
                os.environ["REPRO_BATCH_WIDTH"] = previous
        return [(o.index, o.kind, o.result) for o in report.outcomes]

    assert run(True) == run(False)


# ----------------------------------------------------------------------
# Contract plumbing: gates, cache keys, record fields, seed fast paths


def test_engine_knobs_reflect_batch_gate():
    with batch_gate.forced(True):
        assert "batch=1" in engine_knobs()
    with batch_gate.forced(False):
        assert "batch=0" in engine_knobs()


def test_cache_key_separates_engine_paths(tmp_path):
    cache = ResultCache(tmp_path)
    with batch_gate.forced(True):
        on = cache.key_for(probe_sweep.probe_trial, {}, 7)
    with batch_gate.forced(False):
        off = cache.key_for(probe_sweep.probe_trial, {}, 7)
    assert on != off


def test_bench_record_engine_fields():
    record = bench_run_record(
        workers=0,
        wall_s=2.0,
        sim={"engines_created": 0, "events_executed": 100},
        engine="batched",
        batch_width=64,
    )
    assert record["engine"] == "batched"
    assert record["batch_width"] == 64
    # Omitted -> absent, so legacy artifacts keep their exact shape.
    bare = bench_run_record(workers=0, wall_s=1.0)
    assert "engine" not in bare and "batch_width" not in bare
    line = format_record(
        make_record(name="x", kind="bench", run=record, fingerprint="f" * 64)
    )
    assert "engine=batchedx64" in line


def test_payload_bits_matches_derive_seed():
    for seed in (0, 7, 2**62 + 12345):
        assert probe_sweep.payload_bits(seed, 40) == [
            derive_seed(seed, "payload", s) & 1 for s in range(40)
        ]


def test_derive_seed_fast_path_matches_canonical():
    import hashlib

    for args in ((7, "payload", 3), (0, "trial", 12), (41, "a", "b", 2)):
        material = canonical_repr(args)
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        want = int.from_bytes(digest[:8], "big") & (2**63 - 1)
        assert derive_seed(*args) == want
    # Non-primitive components take the canonical fallback.
    assert isinstance(derive_seed(7, 1.5, None, (1, 2)), int)
