"""Analytical calculator tier: sub-models, planner, sweep integration."""

import json

import pytest

from repro.analysis.contention_sweep import DEFAULTS, contention_run
from repro.analysis.metrics import AggregateResult
from repro.analysis.sweep import SOURCE_DES, SOURCE_MODEL, grid, run_sweep
from repro.config import kaby_lake, kaby_lake_model
from repro.errors import AttackError
from repro.exec import MODEL, OK, TrialExecutor, TrialSpec
from repro.model import (
    FIGURE_CEILINGS,
    FIGURES,
    ModelPrediction,
    PrescreenBudget,
    pareto_frontier,
    plan_prescreen,
    predict_point,
    validate_figure,
    validate_figures,
)
from repro.model import hitmiss, queueing, timer
from repro.model.prescreen import FRONTIER, MARGIN, PROBE, SKIPPED, UNSUPPORTED


# -- sub-models ---------------------------------------------------------


def test_timer_rate_saturates_with_threads():
    config = kaby_lake()
    assert timer.counter_rate(config, 0) == 0.0
    assert timer.counter_rate(config, 16) < timer.counter_rate(config, 224)
    assert timer.counter_rate(config, 224) <= config.slm.saturated_rate_per_cycle


def test_timer_levels_separate_at_full_threads():
    detail = timer.predict_timer(kaby_lake())
    assert detail["levels_separated"] == 1.0
    assert detail["l3_ticks"] < detail["llc_ticks"] < detail["memory_ticks"]


def test_queueing_latency_profile_orders_levels():
    profile = queueing.latency_profile_ns(kaby_lake_model(scale=16))
    assert 0 < profile["gpu_l3_ns"] < profile["gpu_llc_ns"] < profile["gpu_dram_ns"]
    assert profile["cpu_llc_ns"] < profile["cpu_dram_ns"]


def test_streaming_miss_fraction_is_monotone_piecewise():
    f = queueing.streaming_miss_fraction
    assert f(0.5) == 0.0
    assert f(queueing.PLRU_HIT_EDGE) == 0.0
    assert f(1.0) == pytest.approx(queueing.PLRU_MISS_AT_CAPACITY)
    assert f(queueing.PLRU_THRASH_EDGE) == 1.0
    assert f(2.0) == 1.0
    ratios = [0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3]
    fractions = [f(r) for r in ratios]
    assert fractions == sorted(fractions)


def test_iteration_factor_decreases_with_buffer_size():
    config = kaby_lake_model(scale=16)
    small = queueing.iteration_factor(config, 256 * 1024)
    large = queueing.iteration_factor(config, 2 * 1024 * 1024)
    assert small["iteration_factor"] > large["iteration_factor"] > 0


def test_hitmiss_more_sets_cost_bandwidth():
    one = hitmiss.predict_llc_channel(n_sets_per_role=1)
    four = hitmiss.predict_llc_channel(n_sets_per_role=4)
    assert one["bandwidth_kbps"] > four["bandwidth_kbps"] > 0


def test_hitmiss_rejects_bad_inputs():
    with pytest.raises(ValueError):
        hitmiss.predict_llc_channel(strategy="no-such-strategy")
    with pytest.raises(ValueError):
        hitmiss.predict_llc_channel(n_sets_per_role=0)


# -- dispatch and report ------------------------------------------------


def test_predict_point_unknown_family_raises():
    with pytest.raises(AttackError, match="unknown model family"):
        predict_point("warp-drive")


def test_predict_point_contention_trial_supported_envelope():
    supported = predict_point("contention_trial", {"n_workgroups": 2})
    assert supported.supported
    faulted = predict_point(
        "contention_trial", {"n_workgroups": 2, "fault_intensity": 0.5}
    )
    assert not faulted.supported
    cpu = predict_point("contention_trial", {"trojan": "cpu"})
    assert not cpu.supported


def test_prediction_report_shape_and_goodput():
    pred = predict_point("contention_trial", {"n_workgroups": 2})
    doc = pred.as_dict()
    assert doc["family"] == "contention_trial"
    assert set(doc) >= {
        "predicted_bandwidth_kbps",
        "predicted_error_percent",
        "predicted_goodput_kbps",
        "supported",
        "breakdown",
    }
    assert 0 < pred.goodput_kbps <= pred.bandwidth_kbps
    json.dumps(doc)  # must be JSON-able as committed


def test_prediction_as_aggregate_is_zero_run():
    aggregate = predict_point("contention_trial", {}).as_aggregate()
    assert isinstance(aggregate, AggregateResult)
    assert aggregate.n_runs == 0  # the provenance marker


# -- pre-screening planner ----------------------------------------------


def _pred(bw, err, supported=True):
    return ModelPrediction(
        family="test", bandwidth_kbps=bw, error_percent=err,
        supported=supported,
    )


def test_pareto_frontier_drops_dominated():
    frontier = pareto_frontier([(10, 1.0), (20, 1.0), (20, 5.0), (5, 0.0)])
    assert frontier == [(5, 0.0), (20, 1.0)]


def test_plan_simulates_frontier_and_unsupported():
    plan = plan_prescreen(
        [
            _pred(100, 0.0),            # frontier
            _pred(50, 10.0),            # dominated
            _pred(200, 20.0),           # frontier (faster, worse)
            None,                       # predictor failed
            _pred(80, 0.0, supported=False),
        ],
        PrescreenBudget(random_probes=0),
    )
    assert plan.reasons == [FRONTIER, SKIPPED, FRONTIER, UNSUPPORTED,
                            UNSUPPORTED]
    assert plan.simulate == [True, False, True, True, True]
    assert plan.n_simulated == 4
    assert plan.n_skipped == 1


def test_plan_margin_band_keeps_near_frontier():
    budget = PrescreenBudget(
        bandwidth_margin=0.10, error_margin_points=0.0, random_probes=0
    )
    plan = plan_prescreen(
        [_pred(100, 1.0), _pred(95, 1.0), _pred(50, 1.0)], budget
    )
    # 95 kb/s is within 10% of the 100 kb/s frontier point; 50 is not.
    assert plan.reasons == [FRONTIER, MARGIN, SKIPPED]


def test_plan_identical_predictions_collapse_to_one_rep():
    plan = plan_prescreen(
        [_pred(100, 0.0)] * 3 + [_pred(10, 40.0)],
        PrescreenBudget(random_probes=0),
    )
    assert plan.reasons[:3].count(FRONTIER) == 1
    assert plan.n_simulated == 1


def test_plan_probes_are_deterministic():
    preds = [_pred(100, 0.0)] + [_pred(10 + i, 40.0) for i in range(20)]
    budget = PrescreenBudget(random_probes=3, probe_seed=7)
    first = plan_prescreen(preds, budget)
    second = plan_prescreen(preds, budget)
    assert first.simulate == second.simulate
    assert first.reasons.count(PROBE) == 3
    other = plan_prescreen(preds, PrescreenBudget(random_probes=3,
                                                  probe_seed=8))
    assert other.reasons.count(PROBE) == 3


# -- executor + sweep integration ---------------------------------------


def test_executor_short_circuits_resolved_specs():
    from repro.exec.demo import synthetic_trial

    payload = predict_point("contention_trial", {})
    specs = [
        TrialSpec(fn=synthetic_trial, params={"noise": 0.0, "n_bits": 8},
                  seed=1),
        TrialSpec(fn=synthetic_trial, params={"noise": 0.0, "n_bits": 8},
                  seed=2, resolved=payload),
    ]
    report = TrialExecutor(workers=0).run(specs)
    kinds = [o.kind for o in report.outcomes]
    assert kinds == [OK, MODEL]
    assert report.outcomes[1].result is payload
    assert report.outcomes[1].attempts == 0
    assert not report.failures  # a model answer is not a failure
    assert "1 answered by model" in report.summary()


PRESCREEN_POINTS = grid(
    slot_ns=(600.0, 1200.0, 1800.0, 2400.0),
    n_workgroups=(2, 4),
    n_slots=(4,),
)


def _contention_predict(params):
    return predict_point("contention_trial", params)


@pytest.mark.parametrize("workers", [0, 2])
def test_prescreened_sweep_sources_and_bit_identity(workers):
    full = run_sweep(contention_run, PRESCREEN_POINTS, seeds=(1,),
                     workers=workers)
    guided = run_sweep(contention_run, PRESCREEN_POINTS, seeds=(1,),
                       workers=workers, predict=_contention_predict)
    sources = {p.source for p in guided.points}
    assert sources == {SOURCE_DES, SOURCE_MODEL}
    for full_point, guided_point in zip(full.points, guided.points):
        assert guided_point.predicted is not None
        if guided_point.source == SOURCE_DES:
            # Pre-screening decides whether the DES runs, never what it
            # computes: simulated points are bit-identical to the
            # unscreened sweep.
            assert (guided_point.aggregate.as_dict()
                    == full_point.aggregate.as_dict())
        else:
            assert guided_point.aggregate.n_runs == 0
            assert guided_point.failures == 0


def test_prescreened_sweep_rows_grow_source_column():
    guided = run_sweep(contention_run, PRESCREEN_POINTS, seeds=(1,),
                       predict=_contention_predict)
    header = guided.header()
    assert header[-1] == "source"
    assert all(row[-1] in (SOURCE_DES, SOURCE_MODEL)
               for row in guided.rows())
    # An unscreened sweep keeps the legacy shape.
    full = run_sweep(contention_run, PRESCREEN_POINTS[:2], seeds=(1,))
    assert full.header()[-1] == "err %"


def test_best_by_error_prefers_measured_over_predicted():
    guided = run_sweep(contention_run, PRESCREEN_POINTS, seeds=(1,),
                       predict=_contention_predict)
    assert any(p.source == SOURCE_MODEL for p in guided.points)
    assert guided.best_by_error().source == SOURCE_DES


def _raising_predict(params):
    raise RuntimeError("model tier unavailable")


def _unsupported_predict(params):
    return ModelPrediction(family="test", bandwidth_kbps=1.0,
                           error_percent=0.0, supported=False)


@pytest.mark.parametrize("workers", [0, 2, 8])
@pytest.mark.parametrize("predict", [_raising_predict, _unsupported_predict],
                         ids=["raising", "unsupported"])
def test_prescreen_fallback_degrades_to_full_sweep(workers, predict):
    """A broken or inapplicable model must cost nothing but time: the
    sweep degrades to the full-DES sweep, bit-identical to today."""
    from repro.exec.demo import synthetic_trial

    points = grid(noise=(0.0, 0.1, 0.2), n_bits=(16,))
    plain = run_sweep(synthetic_trial, points, seeds=(1, 2))
    guarded = run_sweep(synthetic_trial, points, seeds=(1, 2),
                        workers=workers, predict=predict)
    assert all(p.source == SOURCE_DES for p in guarded.points)
    assert [p.aggregate.as_dict() for p in guarded.points] == [
        p.aggregate.as_dict() for p in plain.points
    ]
    assert guarded.rows() == plain.rows()
    assert guarded.header() == plain.header()


def test_prescreened_sweep_telemetry_counts_model_points():
    import io

    from repro.obs.telemetry import SweepTelemetry

    stream = io.StringIO()
    telemetry = SweepTelemetry(label="prescreen", stream=stream)
    executor = TrialExecutor(workers=0, telemetry=telemetry)
    run_sweep(contention_run, PRESCREEN_POINTS, seeds=(1,),
              executor=executor, predict=_contention_predict)
    events = [json.loads(line)
              for line in stream.getvalue().splitlines() if line.strip()]
    model_events = [e for e in events if e["ev"] == "trial.model"]
    assert model_events
    finish = [e for e in events if e["ev"] == "sweep.finish"][-1]
    assert finish["model"] == len(model_events)
    assert finish["ok"] + finish["model"] == len(PRESCREEN_POINTS)


# -- figure validation --------------------------------------------------


def test_validate_figure_unknown_name_raises():
    with pytest.raises(AttackError, match="unknown figure"):
        validate_figure("fig99")


def test_validate_figures_pass_committed_baselines():
    doc = validate_figures(FIGURES)
    assert doc["pass"], json.dumps(doc, indent=2)
    assert set(doc["figures"]) == set(FIGURES)
    for figure, report in doc["figures"].items():
        assert report["ceilings"] == FIGURE_CEILINGS[figure]
        assert report["channels"], f"{figure} validated no channels"


def test_validate_figure_detects_model_drift(tmp_path, monkeypatch):
    """A figure whose measurement moves past the ceiling must fail."""
    import pathlib

    real = validate_figure("fig10")
    source = pathlib.Path("benchmarks/results/BENCH_fig10.json")
    doc = json.loads(source.read_text())
    drifted_any = False
    for entry in doc.get("runs", {}).values():
        for channel in entry.get("channels", {}).values():
            channel["bandwidth_kbps"] = 10_000.0  # far past any ceiling
            drifted_any = True
    assert drifted_any, "committed fig10 artifact carries no channels"
    (tmp_path / "BENCH_fig10.json").write_text(json.dumps(doc))
    drifted = validate_figure("fig10", results_dir=tmp_path)
    assert real["pass"] and not drifted["pass"]


# -- model CLI ----------------------------------------------------------


def test_cli_point_reports_microsecond_prediction(capsys):
    from repro.model.__main__ import main

    code = main(["--point", "contention_trial",
                 "--params", '{"n_workgroups": 2}'])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["family"] == "contention_trial"
    assert doc["predicted_bandwidth_kbps"] > 0
    assert doc["prediction_us"] < 1e6


def test_cli_validate_writes_report(tmp_path, capsys):
    from repro.model.__main__ import main

    out = tmp_path / "report.json"
    code = main(["--validate", "fig09", "--json", str(out)])
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["pass"]
    assert set(doc["figures"]) == {"fig09"}


def test_cli_rejects_bad_params(capsys):
    from repro.model.__main__ import main

    assert main(["--point", "contention_trial", "--params", "[1]"]) == 2
    assert "error" in capsys.readouterr().err


# -- observability integration ------------------------------------------


def test_drift_prediction_error_warnings():
    from repro.obs.drift import prediction_error_warnings

    channels = {
        "good": {
            "bandwidth_kbps": 100.0, "predicted_bandwidth_kbps": 103.0,
            "error_percent": 1.0, "predicted_error_percent": 1.5,
        },
        "bad-bw": {
            "bandwidth_kbps": 100.0, "predicted_bandwidth_kbps": 160.0,
            "error_percent": 1.0, "predicted_error_percent": 1.0,
        },
        "bad-ber": {
            "bandwidth_kbps": 100.0, "predicted_bandwidth_kbps": 100.0,
            "error_percent": 1.0, "predicted_error_percent": 9.0,
        },
        "model-only": {"predicted_bandwidth_kbps": 50.0},
    }
    warnings = prediction_error_warnings(
        channels, bandwidth_rel_ceiling=0.2, ber_abs_ceiling_points=5.0,
        label="sweep",
    )
    assert len(warnings) == 2
    assert any("bad-bw" in w and "predicted bandwidth" in w
               for w in warnings)
    assert any("bad-ber" in w and "predicted BER" in w for w in warnings)


def test_bench_run_record_merges_predictions():
    from repro.obs.telemetry import bench_run_record

    record = bench_run_record(
        workers=0,
        wall_s=1.0,
        channels={"wg2": {"bandwidth_kbps": 100.0, "error_percent": 1.0}},
        predictions={
            "wg2": {"predicted_bandwidth_kbps": 101.0, "family": "x"},
            "wg4": {"predicted_bandwidth_kbps": 55.0, "family": "x"},
        },
    )
    channels = record["channels"]
    assert channels["wg2"]["source"] == "des"  # measured + predicted
    assert channels["wg2"]["predicted_bandwidth_kbps"] == 101.0
    assert channels["wg2"]["bandwidth_kbps"] == 100.0
    assert "family" not in channels["wg2"]  # only predicted_* merges
    assert channels["wg4"]["source"] == "model"  # prediction only


def test_ledger_accepts_predictions_block(tmp_path):
    from repro.obs.ledger import (
        append_record, make_record, read_records, validate_record,
    )

    record = make_record(
        name="prescreen", kind="bench", run={"wall_s": 1.0},
        predictions={"wg2": {"predicted_bandwidth_kbps": 101.0}},
        fingerprint="f" * 12,
    )
    assert validate_record(record) == []
    path = tmp_path / "ledger.jsonl"
    append_record(path, record)
    records, problems = read_records(path)
    assert problems == []
    (loaded,) = records
    assert loaded["predictions"] == {
        "wg2": {"predicted_bandwidth_kbps": 101.0}
    }
    bad = dict(record, predictions="not-a-dict")
    assert validate_record(bad)


# -- contention_run adapter ---------------------------------------------


def test_contention_run_matches_trial_family():
    result = contention_run({"n_slots": 8, "n_workgroups": 2}, seed=3)
    assert len(result.sent) == 8
    assert result.bandwidth_bps == pytest.approx(
        1e9 / DEFAULTS["slot_ns"], rel=1e-9
    )
    assert result.meta["family"] == "contention_trial"
