"""Analysis layer: aggregation, rendering, figure harnesses (small runs)."""

import pytest

from repro.analysis.metrics import aggregate_results
from repro.analysis.render import format_table, horizontal_bar
from repro.core.channel import ChannelDirection, ChannelResult


def _result(bandwidth_bits, elapsed_fs, errors):
    sent = [1, 0] * (bandwidth_bits // 2)
    received = list(sent)
    # Spaced substitutions so the aligned edit distance equals the count.
    for index in range(errors):
        received[index * 7] ^= 1
    return ChannelResult(
        direction=ChannelDirection.GPU_TO_CPU,
        sent=sent,
        received=received,
        elapsed_fs=elapsed_fs,
    )


def test_aggregate_means_and_ci():
    results = [_result(100, 10**12, 2), _result(100, 10**12, 4)]
    aggregate = aggregate_results(results)
    assert aggregate.n_runs == 2
    assert aggregate.error_percent == pytest.approx(3.0)
    assert aggregate.bandwidth_kbps == pytest.approx(100 / (10**12 / 1e15) / 1e3)
    assert aggregate.error_ci > 0
    assert "kb/s" in aggregate.summary()


def test_channel_result_properties():
    result = _result(50, 5 * 10**11, 1)
    assert result.n_bits == 50
    assert result.elapsed_s == pytest.approx(5e-4)
    assert result.error_rate == pytest.approx(1 / 50)
    assert result.error_percent == pytest.approx(2.0)
    assert result.direction.pretty == "GPU→CPU"


def test_format_table_alignment():
    table = format_table(["name", "value"], [["a", 1], ["longer", 22]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert all(len(line) <= len(max(lines, key=len)) for line in lines)


def test_horizontal_bar_proportions():
    full = horizontal_bar(10, 10, width=10)
    half = horizontal_bar(5, 10, width=10)
    assert full == "#" * 10
    assert half == "#" * 5 + "." * 5
    assert horizontal_bar(20, 10, width=10) == "#" * 10  # clamped
    assert horizontal_bar(1, 0) == ""


def test_fig9_harness_shape():
    from repro.analysis.figures import fig9_iteration_factor

    data = fig9_iteration_factor(gpu_buffer_sizes=(512 * 1024, 2 * 1024 * 1024))
    assert len(data.points) == 2
    factors = [p.iteration_factor for p in data.points]
    assert factors[0] > factors[1]
    rows = data.rows()
    assert len(rows) == 2
    assert "claim" in data.paper


def test_fig4_harness_shape():
    from repro.analysis.figures import fig4_timer_characterization

    data = fig4_timer_characterization(samples=10, thread_counts=(32, 224))
    assert data.main.levels_separated
    assert len(data.sweep) == 2
    assert len(data.rows()) == 9  # 3 characterizations x 3 levels


def test_headline_harness_small():
    from repro.analysis.figures import headline

    data = headline(n_bits=24, seeds=(1,))
    assert data.llc.bandwidth_kbps > 0
    assert data.contention.bandwidth_kbps > 0
    assert len(data.rows()) == 2
