"""Cross-module integration: the library as a downstream user sees it."""

import pytest

import repro
from repro import (
    ChannelDirection,
    ContentionChannel,
    ContentionChannelConfig,
    LLCChannel,
    LLCChannelConfig,
    bits_to_bytes,
    bytes_to_bits,
)


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_ascii_message_over_llc_channel():
    message = b"hi!"
    payload = bytes_to_bits(message)
    result = LLCChannel(LLCChannelConfig(system_effects=False)).transmit(
        bits=payload, seed=13
    )
    assert bits_to_bytes(result.received) == message


def test_ascii_message_over_contention_channel():
    message = b"ok"
    payload = bytes_to_bits(message)
    channel = ContentionChannel(ContentionChannelConfig(system_effects=False))
    calibration = channel.calibrate(seed=13)
    result = channel.transmit(bits=payload, seed=13, calibration=calibration)
    assert bits_to_bytes(result.received[: len(payload)]) == message


def test_bidirectional_llc_exchange():
    """The paper implements both directions; run them back to back."""
    forward = LLCChannel(
        LLCChannelConfig(direction=ChannelDirection.GPU_TO_CPU)
    ).transmit(n_bits=24, seed=14)
    backward = LLCChannel(
        LLCChannelConfig(direction=ChannelDirection.CPU_TO_GPU)
    ).transmit(n_bits=24, seed=14)
    assert forward.error_rate <= 0.15
    assert backward.error_rate <= 0.2
    assert forward.direction is ChannelDirection.GPU_TO_CPU
    assert backward.direction is ChannelDirection.CPU_TO_GPU


def test_channels_share_one_soc_definition():
    llc = LLCChannel(LLCChannelConfig())
    contention = ContentionChannel(ContentionChannelConfig())
    assert llc.soc_config.llc.total_bytes == contention.soc_config.llc.total_bytes


def test_llc_faster_strategies_beat_contention_on_error_not_bandwidth():
    """§V headline shape: contention is the faster channel."""
    llc = LLCChannel(LLCChannelConfig()).transmit(n_bits=48, seed=15)
    contention_channel = ContentionChannel(ContentionChannelConfig())
    calibration = contention_channel.calibrate(seed=15)
    contention = contention_channel.transmit(
        n_bits=48, seed=15, calibration=calibration
    )
    assert contention.bandwidth_kbps > llc.bandwidth_kbps
