"""Tests for repro.faults: deterministic injection, hardened protocols,
and the graceful-degradation robustness matrix."""

import dataclasses

import pytest

from repro.config import ConfigError, FaultsConfig, kaby_lake_model
from repro.core.contention_channel.channel import (
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.llc_channel.channel import LLCChannel, LLCChannelConfig
from repro.errors import GpuModelError
from repro.faults import FaultSuite, run_matrix
from repro.faults.matrix import faulted_llc_trial
from repro.gpu.workgroup import WorkGroupCtx
from repro.obs import recorder
from repro.obs.sinks import MemorySink
from repro.sim import FS_PER_S, FS_PER_US
from repro.soc.machine import SoC


@pytest.fixture(autouse=True)
def _clean_recorder():
    yield
    recorder.uninstall()


def _faulted_config(intensity=1.0, **overrides):
    faults = FaultsConfig().scaled(intensity)
    if overrides:
        faults = dataclasses.replace(faults, **overrides)
    return kaby_lake_model(scale=16).replace(faults=faults)


# ----------------------------------------------------------------------
# FaultsConfig


def test_faults_config_default_off_and_valid():
    config = kaby_lake_model(scale=16)
    assert not config.faults.enabled
    config.validate()  # must not raise


def test_scaled_zero_is_enabled_noop():
    scaled = FaultsConfig().scaled(0.0)
    assert scaled.enabled
    assert scaled.dram_spike_probability == 0.0
    assert scaled.ring_burst_rate_per_s == 0.0
    assert scaled.preempt_rate_per_s == 0.0
    assert scaled.clock_drift_step == 0.0
    assert scaled.probe_drop_probability == 0.0
    scaled.validate()


def test_scaled_clamps_probabilities():
    scaled = FaultsConfig(probe_drop_probability=0.4,
                          probe_duplicate_probability=0.4).scaled(2.0)
    assert scaled.probe_drop_probability == pytest.approx(0.8)
    # Duplicate respects the remaining probability budget.
    assert scaled.probe_drop_probability + scaled.probe_duplicate_probability <= 1.0
    assert scaled.clock_drift_max <= 0.9
    scaled.validate()


def test_scaled_negative_intensity_raises():
    with pytest.raises(ConfigError):
        FaultsConfig().scaled(-1.0)


def test_faults_config_validates_probability_range():
    with pytest.raises(ConfigError):
        kaby_lake_model(scale=16).replace(
            faults=FaultsConfig(dram_spike_probability=1.5)
        ).validate()


# ----------------------------------------------------------------------
# Injector mechanics


def test_suite_starts_with_system_effects_and_is_idempotent():
    soc = SoC(_faulted_config())
    assert soc.fault_suite is None
    soc.start_system_effects()
    suite = soc.fault_suite
    assert isinstance(suite, FaultSuite)
    soc.start_faults()  # idempotent: the running suite stays
    assert soc.fault_suite is suite
    assert soc.dram.fault_hook is not None
    assert soc.probe_fault_hook is not None
    soc.stop_faults()
    assert soc.fault_suite is None
    assert soc.dram.fault_hook is None
    assert soc.probe_fault_hook is None


def test_healthy_machine_never_starts_faults():
    soc = SoC(kaby_lake_model(scale=16))
    soc.start_system_effects()
    assert soc.fault_suite is None
    assert soc.dram.fault_hook is None


def test_injectors_fire_and_are_observable():
    sink = MemorySink()
    recorder.install(sink)
    soc = SoC(_faulted_config(intensity=2.0))
    soc.start_system_effects()
    wg = WorkGroupCtx(soc, workgroup_id=0, subslice=0, threads=256)
    wg.start_timer()
    soc.engine.run(until_fs=int(0.01 * FS_PER_S))
    counts = soc.fault_suite.counts()
    assert counts["ring"] > 0
    assert counts["preempt"] > 0
    assert counts["clock"] > 0
    events = sink.by_name("fault.inject")
    assert len(events) >= counts["ring"] + counts["preempt"] + counts["clock"]
    kinds = {event[3]["kind"] for event in events}
    assert {"ring", "preempt", "clock"} <= kinds


def test_dram_spikes_inflate_latency():
    healthy = SoC(kaby_lake_model(scale=16))
    faulted = SoC(_faulted_config(dram_spike_probability=1.0,
                                  dram_spike_extra_ns=500.0))
    faulted.start_faults()
    healthy_mean = sum(healthy.dram.latency_fs() for _ in range(200)) / 200
    faulted_mean = sum(faulted.dram.latency_fs() for _ in range(200)) / 200
    assert faulted.fault_suite.counts()["dram"] == 200
    assert faulted_mean > healthy_mean + 400.0 * 1e6  # ≥400 ns in fs


def test_preemption_windows_stall_cores():
    soc = SoC(_faulted_config(intensity=4.0))
    soc.start_faults()
    soc.engine.run(until_fs=int(0.01 * FS_PER_S))
    assert soc.fault_suite.counts()["preempt"] > 0
    assert max(soc._core_stall_until) > 0


def test_clock_drift_warps_registered_timers():
    soc = SoC(_faulted_config(intensity=2.0))
    wg = WorkGroupCtx(soc, workgroup_id=0, subslice=0, threads=256)
    timer = wg.start_timer()
    assert timer in soc.slm_timers
    soc.start_faults()
    soc.engine.run(until_fs=int(0.005 * FS_PER_S))
    assert soc.fault_suite.counts()["clock"] > 0
    assert timer.drift != 1.0
    bound = soc.config.faults.clock_drift_max
    assert 1.0 - bound <= timer.drift <= 1.0 + bound


def test_timer_drift_rejects_nonpositive_factor():
    soc = SoC(kaby_lake_model(scale=16))
    wg = WorkGroupCtx(soc, workgroup_id=0, subslice=0, threads=256)
    timer = wg.start_timer()
    with pytest.raises(GpuModelError):
        timer.set_drift(0.0)


def test_probe_hook_classifies_deterministically():
    a = SoC(_faulted_config(intensity=3.0))
    b = SoC(_faulted_config(intensity=3.0))
    a.start_faults()
    b.start_faults()
    draws_a = [a.probe_fault_hook() for _ in range(500)]
    draws_b = [b.probe_fault_hook() for _ in range(500)]
    assert draws_a == draws_b
    assert "drop" in draws_a
    assert "dup" in draws_a


# ----------------------------------------------------------------------
# Hardened protocols end to end


def test_llc_hardening_armed_only_under_faults():
    healthy = LLCChannel(LLCChannelConfig(), soc_config=kaby_lake_model(scale=16))
    assert healthy.build_session(seed=0).tuning.max_resyncs == 0
    faulted = LLCChannel(LLCChannelConfig(), soc_config=_faulted_config())
    tuning = faulted.build_session(seed=0).tuning
    assert tuning.max_resyncs >= 2
    assert tuning.erasure_limit >= 8


def test_llc_transmission_survives_faults():
    channel = LLCChannel(LLCChannelConfig(), soc_config=_faulted_config(2.0))
    result = channel.transmit(n_bits=10, seed=3)
    assert len(result.received) == 10
    assert result.error_rate < 0.5


def test_llc_faulted_run_is_deterministic():
    def run():
        channel = LLCChannel(LLCChannelConfig(), soc_config=_faulted_config(2.0))
        return channel.transmit(n_bits=8, seed=5)

    first, second = run(), run()
    assert first.received == second.received
    assert first.elapsed_fs == second.elapsed_fs


def test_contention_transmission_degrades_not_dies():
    healthy = kaby_lake_model(scale=16)
    config = ContentionChannelConfig()
    calibration = ContentionChannel(config, soc_config=healthy).calibrate(seed=3)
    channel = ContentionChannel(config, soc_config=_faulted_config(2.0))
    result = channel.transmit(n_bits=16, seed=3, calibration=calibration)
    assert len(result.received) == 16
    assert result.error_rate < 0.5
    assert result.meta["frame_attempts"] >= 1


def test_contention_faulted_run_is_deterministic():
    healthy = kaby_lake_model(scale=16)
    config = ContentionChannelConfig()
    calibration = ContentionChannel(config, soc_config=healthy).calibrate(seed=4)
    def run():
        channel = ContentionChannel(config, soc_config=_faulted_config(1.5))
        return channel.transmit(n_bits=12, seed=4, calibration=calibration)

    first, second = run(), run()
    assert first.received == second.received
    assert first.meta["frame_attempts"] == second.meta["frame_attempts"]


# ----------------------------------------------------------------------
# Robustness matrix


def test_run_matrix_graceful_and_deterministic():
    kwargs = dict(
        channel="llc",
        intensities=(0.0, 1.0),
        n_bits=8,
        n_seeds=1,
        root_seed=2,
    )
    first = run_matrix(**kwargs)
    second = run_matrix(**kwargs)
    assert first.violations() == []
    assert [p.ber_percent for p in first.points] == [
        p.ber_percent for p in second.points
    ]
    assert all(p.n_failed == 0 for p in first.points)
    assert "intensity" in first.table()


def test_matrix_violations_flag_collapse_and_regression():
    from repro.faults.matrix import MatrixPoint, MatrixResult

    result = MatrixResult(
        channel="llc",
        points=[
            MatrixPoint(0.0, 30.0, 10.0, 1.0, n_ok=2, n_dead=0, n_failed=0),
            MatrixPoint(1.0, 5.0, 10.0, 1.0, n_ok=2, n_dead=0, n_failed=1),
            MatrixPoint(2.0, 60.0, 10.0, 1.0, n_ok=0, n_dead=2, n_failed=0),
        ],
        report=None,
    )
    violations = result.violations(max_ber_percent=45.0, slack_percent=8.0)
    text = "\n".join(violations)
    assert "crashed or timed out" in text
    assert "collapsed" in text
    assert "should not help" in text


def test_matrix_trial_fn_smoke():
    record = faulted_llc_trial({"intensity": 1.0, "n_bits": 6}, seed=1)
    assert set(record) >= {"error_rate", "bandwidth_kbps", "n_received"}
    assert 0.0 <= record["error_rate"] <= 1.0


def test_matrix_rejects_unknown_channel():
    with pytest.raises(ValueError):
        run_matrix(channel="carrier-pigeon")


# ----------------------------------------------------------------------
# Hardened protocol building blocks


def test_resync_events_recorded_when_observed():
    """The resync path emits channel.resync events (when it triggers)."""
    from repro.obs import TRACE_EVENT_NAMES

    assert "channel.resync" in TRACE_EVENT_NAMES
    assert "fault.inject" in TRACE_EVENT_NAMES


def test_pace_until_bound_is_configurable():
    config = ContentionChannelConfig(max_pace_spins=123)
    assert config.max_pace_spins == 123
