"""Tests for repro.checkpoint: pickle-free snapshot/restore of the SoC.

Three layers of the contract (DESIGN §12):

* every stateful component's ``state_dict()``/``load_state()`` pair
  round-trips exactly, through the same canonical JSON bytes a
  :class:`~repro.checkpoint.CheckpointStore` blob holds (Hypothesis
  property tests);
* stale or mismatched snapshots are rejected loudly — schema version,
  config digest, fastpath flag, RNG family, cache geometry;
* forking a transmission from a restored snapshot is bit-identical to a
  cold start, for both channel families, across seeds, with mitigations
  and fault injection in the mix, and through the executor's prefix
  scheduling in both serial and worker-pool modes.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import checkpoint
from repro.checkpoint import (
    SCHEMA_VERSION,
    CheckpointStore,
    check_snapshot,
    restore_soc,
    snapshot_bytes,
    snapshot_from_bytes,
    snapshot_soc,
)
from repro.config import kaby_lake_model
from repro.cpu.pointer_chase import PointerChaseBuffer
from repro.errors import (
    CacheGeometryError,
    CheckpointError,
    SimulationError,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim import RngStreams
from repro.sim.engine import Engine
from repro.sim.resources import FifoResource
from repro.sim.stats import OnlineStats
from repro.soc.cache import SetAssocCache
from repro.soc.machine import SoC
from repro.soc.replacement import make_policy

CONFIG = kaby_lake_model(scale=16)


def roundtrip(state):
    """Push component state through the exact on-disk representation."""
    return json.loads(json.dumps(state))


# -- leaf component round-trips ---------------------------------------------


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000), max_size=20))
def test_engine_roundtrip(delays):
    engine = Engine()
    for delay in delays:
        engine.schedule(delay, lambda: None)
    engine.run()
    state = roundtrip(engine.state_dict())
    clone = Engine()
    clone.load_state(state)
    assert clone.state_dict() == engine.state_dict()
    assert clone.now == engine.now
    assert clone.events_executed == engine.events_executed


def test_engine_rejects_non_quiescent_snapshot():
    engine = Engine()
    engine.schedule(10, lambda: None)
    with pytest.raises(SimulationError, match="not quiescent"):
        engine.state_dict()
    busy = Engine()
    busy.schedule(5, lambda: None)
    with pytest.raises(SimulationError, match="busy engine"):
        busy.load_state({"now": 0, "sequence": 0, "events_executed": 0})


@given(
    holds=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=1000),
            st.integers(min_value=0, max_value=100),
        ),
        max_size=20,
    )
)
def test_fifo_resource_ledger_roundtrip(holds):
    engine = Engine()
    resource = FifoResource(engine, "rt")
    at = 0
    for hold, gap in holds:
        at += gap
        resource.reserve(hold, at_fs=at)
    state = roundtrip(resource.state_dict())
    clone = FifoResource(Engine(), "rt-clone")
    clone.load_state(state)
    assert clone.state_dict() == resource.state_dict()


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    draws=st.lists(
        st.tuples(st.sampled_from(["a", "b", "payload"]),
                  st.integers(min_value=1, max_value=16)),
        max_size=12,
    ),
)
@settings(max_examples=25)
def test_rng_streams_roundtrip_and_continuation(seed, draws):
    rng = RngStreams(seed)
    for name, n in draws:
        rng.stream(name).random(n)
    state = roundtrip(rng.state_dict())
    clone = RngStreams(seed)
    clone.load_state(state)
    assert clone.state_dict() == rng.state_dict()
    # The restored family continues the exact draw sequence — including
    # streams the snapshot never mentioned (position-zero recreation).
    for name in ("a", "b", "payload", "never-touched"):
        assert list(clone.stream(name).random(4)) == list(rng.stream(name).random(4))


def test_rng_streams_rejects_foreign_family():
    state = RngStreams(1).state_dict()
    with pytest.raises(CheckpointError, match="different"):
        RngStreams(2).load_state(state)


@given(values=st.lists(st.floats(min_value=-1e9, max_value=1e9), max_size=30))
def test_online_stats_roundtrip(values):
    stats = OnlineStats()
    for value in values:
        stats.add(value)
    state = roundtrip(stats.state_dict())
    clone = OnlineStats()
    clone.load_state(state)
    assert clone.state_dict() == stats.state_dict()
    assert clone.snapshot() == stats.snapshot()


def test_online_stats_empty_roundtrip_keeps_sentinels():
    state = roundtrip(OnlineStats().state_dict())
    assert state["min"] is None and state["max"] is None
    clone = OnlineStats()
    clone.load_state(state)
    clone.add(3.0)  # sentinels must still behave as ±inf
    assert clone.minimum == clone.maximum == 3.0


@given(
    paddrs=st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=60),
    policy_name=st.sampled_from(["lru", "tree-plru"]),
)
@settings(max_examples=50)
def test_set_assoc_cache_roundtrip(paddrs, policy_name):
    def build():
        return SetAssocCache("rt", n_sets=8, ways=4, line_bytes=64,
                             policy=make_policy(policy_name, 4))

    cache = build()
    for paddr in paddrs:
        cache.access(paddr)
    state = roundtrip(cache.state_dict())
    clone = build()
    clone.load_state(state)
    assert clone.state_dict() == cache.state_dict()
    # Replacement metadata must survive: identical future evictions.
    for paddr in paddrs[:10]:
        a, b = cache.access(paddr ^ (1 << 19)), clone.access(paddr ^ (1 << 19))
        assert (a.hit, a.set_index, a.way, a.evicted) == (b.hit, b.set_index, b.way, b.evicted)


def test_set_assoc_cache_rejects_geometry_mismatch():
    small = SetAssocCache("s", n_sets=4, ways=2, line_bytes=64, policy=make_policy("lru", 2))
    big = SetAssocCache("b", n_sets=8, ways=2, line_bytes=64, policy=make_policy("lru", 2))
    with pytest.raises(CacheGeometryError, match="geometry"):
        big.load_state(small.state_dict())


@given(values=st.lists(st.floats(min_value=0, max_value=1e6), max_size=40))
def test_histogram_roundtrip(values):
    hist = Histogram("rt", reservoir=16)
    for value in values:
        hist.add(value)
    state = roundtrip(hist.state_dict())
    clone = Histogram("rt", reservoir=16)
    clone.load_state(state)
    assert clone.state_dict() == hist.state_dict()
    assert clone.snapshot() == hist.snapshot()


@given(
    counters=st.dictionaries(
        st.sampled_from(["a.hits", "b.misses", "c"]),
        st.integers(min_value=0, max_value=1 << 40),
        max_size=3,
    ),
    samples=st.lists(st.floats(min_value=0, max_value=1e6), max_size=10),
)
def test_metrics_registry_roundtrip(counters, samples):
    registry = MetricsRegistry(reservoir=16)
    for name, value in counters.items():
        registry.counter(name).set(value)
    for value in samples:
        registry.histogram("lat").add(value)
    state = roundtrip(registry.state_dict())
    clone = MetricsRegistry(reservoir=16)
    clone.load_state(state)
    assert clone.state_dict() == registry.state_dict()
    # In-place restore: object identity of existing metrics survives.
    existing = registry.counter("a.hits")
    registry.load_state(state)
    assert registry.counter("a.hits") is existing


@given(
    n_lines=st.integers(min_value=2, max_value=32),
    walk=st.integers(min_value=0, max_value=50),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25)
def test_pointer_chase_roundtrip(n_lines, walk, seed):
    lines = [index * 64 for index in range(n_lines)]
    chase = PointerChaseBuffer.from_lines(lines, np.random.default_rng(seed))
    chase.next_paddrs(walk)
    state = roundtrip(chase.state_dict())
    clone = PointerChaseBuffer.from_state(state)
    assert clone.state_dict() == chase.state_dict()
    assert clone.next_paddrs(2 * n_lines) == chase.next_paddrs(2 * n_lines)


@given(
    accesses=st.integers(min_value=0, max_value=50),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25)
def test_dram_roundtrip(accesses, seed):
    from repro.soc.dram import Dram

    dram = Dram(CONFIG.dram, np.random.default_rng(seed))
    for _ in range(accesses):
        dram.latency_fs()
    state = roundtrip(dram.state_dict())
    clone = Dram(CONFIG.dram, np.random.default_rng(seed))
    clone.load_state(state)
    assert clone.state_dict() == dram.state_dict()


@given(
    transfers=st.lists(
        st.tuples(st.sampled_from(["cpu", "gpu"]), st.integers(1, 8)),
        max_size=20,
    )
)
@settings(max_examples=25)
def test_ring_roundtrip(transfers):
    from repro.soc.ring import Ring

    def build():
        return Ring(Engine(), CONFIG.ring, CONFIG.cpu_clock)

    ring = build()
    for domain, slots in transfers:
        ring.reserve(slots, domain)
    state = roundtrip(ring.state_dict())
    clone = build()
    clone.load_state(state)
    assert clone.state_dict() == ring.state_dict()


@given(blocks=st.lists(st.integers(min_value=0, max_value=12), max_size=8))
@settings(max_examples=25)
def test_mmu_roundtrip(blocks):
    from repro.soc.mmu import Mmu

    mmu = Mmu(CONFIG.mmu, np.random.default_rng(7))
    for exponent in blocks:
        mmu.allocate_block(4096 << exponent, 4096)
    state = roundtrip(mmu.state_dict())
    clone = Mmu(CONFIG.mmu, np.random.default_rng(7))
    clone.load_state(state)
    assert clone.state_dict() == mmu.state_dict()


@given(stores=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=10))
@settings(max_examples=25)
def test_slm_roundtrip(stores):
    from repro.soc.slm import SharedLocalMemory

    slm = SharedLocalMemory(CONFIG.slm, subslice=0)
    offsets = [slm.alloc_word() for _ in stores]
    for offset, value in zip(offsets, stores):
        slm.store(offset, value)
    state = roundtrip(slm.state_dict())
    clone = SharedLocalMemory(CONFIG.slm, subslice=0)
    clone.load_state(state)
    assert clone.state_dict() == slm.state_dict()


@given(paddrs=st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=40))
@settings(max_examples=25)
def test_sliced_llc_roundtrip(paddrs):
    from repro.soc.llc import SlicedLlc

    llc = SlicedLlc(CONFIG.llc)
    for paddr in paddrs:
        llc.access(paddr)
    state = roundtrip(llc.state_dict())
    clone = SlicedLlc(CONFIG.llc)
    clone.load_state(state)
    assert clone.state_dict() == llc.state_dict()


def test_sliced_llc_rejects_slice_count_mismatch():
    import dataclasses

    from repro.soc.llc import SlicedLlc

    llc = SlicedLlc(CONFIG.llc)
    fewer = SlicedLlc(dataclasses.replace(CONFIG.llc, slices=CONFIG.llc.slices // 2))
    with pytest.raises(CacheGeometryError, match="slices"):
        fewer.load_state(llc.state_dict())


@given(paddrs=st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=40))
@settings(max_examples=25)
def test_gpu_l3_roundtrip(paddrs):
    from repro.soc.gpu_l3 import GpuL3

    l3 = GpuL3(CONFIG.gpu_l3)
    for paddr in paddrs:
        l3.access(paddr)
    state = roundtrip(l3.state_dict())
    clone = GpuL3(CONFIG.gpu_l3)
    clone.load_state(state)
    assert clone.state_dict() == l3.state_dict()


@given(paddrs=st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=40))
@settings(max_examples=25)
def test_cpu_core_caches_roundtrip(paddrs):
    from repro.soc.cpu_cache import CpuCoreCaches

    caches = CpuCoreCaches(CONFIG.cpu_cache, core_id=0)
    for paddr in paddrs:
        caches.fill_after_llc(paddr)
    state = roundtrip(caches.state_dict())
    clone = CpuCoreCaches(CONFIG.cpu_cache, core_id=0)
    clone.load_state(state)
    assert clone.state_dict() == caches.state_dict()


# -- envelope validation ----------------------------------------------------


def _quiescent_soc(seed=0):
    soc = SoC(CONFIG.replace(seed=seed))
    soc.quiesce()
    return soc


def test_snapshot_rejects_schema_version_mismatch():
    snapshot = snapshot_soc(_quiescent_soc())
    stale = dict(snapshot, schema=SCHEMA_VERSION + 1)
    with pytest.raises(CheckpointError, match="schema"):
        check_snapshot(stale, CONFIG.replace(seed=0))


def test_snapshot_rejects_config_mismatch():
    snapshot = snapshot_soc(_quiescent_soc(seed=0))
    with pytest.raises(CheckpointError, match="config"):
        restore_soc(CONFIG.replace(seed=1), snapshot)


def test_snapshot_rejects_fastpath_mismatch():
    from repro.sim import fastpath

    snapshot = snapshot_soc(_quiescent_soc())
    flipped = dict(snapshot)
    flipped["state"] = dict(snapshot["state"], fastpath=not fastpath.enabled())
    with pytest.raises(CheckpointError, match="FASTPATH"):
        restore_soc(CONFIG.replace(seed=0), flipped)


def test_snapshot_rejects_corrupt_bytes():
    with pytest.raises(CheckpointError, match="corrupt"):
        snapshot_from_bytes(b"{not json")


def test_snapshot_rejects_live_background_processes():
    soc = SoC(CONFIG.replace(seed=0))
    soc.start_os_ticks()
    with pytest.raises(SimulationError, match="background"):
        soc.state_dict()
    soc.quiesce()
    soc.state_dict()  # quiescing makes it capturable


def test_soc_warm_roundtrip_continues_identically():
    """Snapshot mid-experiment; the restored SoC continues bit-exactly."""
    from repro.cpu.core import CpuProgram

    def warm(soc):
        space = soc.new_process("warm")
        buffer = space.mmap_huge(1 << 16)
        program = CpuProgram(soc, 0, space, name="warm")
        lines = buffer.line_paddrs(soc.config.llc.line_bytes)[:64]

        def body(lines):
            yield from program.read_batch(lines)

        soc.start_os_ticks()
        soc.engine.run_until_complete(soc.engine.process(body(lines)))
        soc.quiesce()
        return lines

    soc = SoC(CONFIG.replace(seed=5))
    lines = warm(soc)
    blob = snapshot_bytes(snapshot_soc(soc))
    clone = restore_soc(CONFIG.replace(seed=5), snapshot_from_bytes(blob))
    assert clone.engine.now == soc.engine.now
    assert clone.metrics_snapshot() == soc.metrics_snapshot()
    # Continuation: the same suffix on both machines stays in lockstep,
    # including RNG stream positions (DRAM latency jitter).
    for machine in (soc, clone):
        space = machine.new_process("suffix")

        def suffix(machine, space):
            from repro.cpu.core import CpuProgram

            program = CpuProgram(machine, 1, space, name="suffix")
            buffer = space.mmap_huge(1 << 14)
            yield from program.read_batch(
                buffer.line_paddrs(machine.config.llc.line_bytes)[:32]
            )

        machine.engine.run_until_complete(
            machine.engine.process(suffix(machine, space))
        )
    assert clone.engine.now == soc.engine.now
    assert clone.metrics_snapshot() == soc.metrics_snapshot()
    assert [int(v) for v in clone.rng.stream("check").integers(0, 1 << 30, 4)] == [
        int(v) for v in soc.rng.stream("check").integers(0, 1 << 30, 4)
    ]


# -- checkpoint store -------------------------------------------------------


def test_store_roundtrip_and_stats(tmp_path):
    store = CheckpointStore(tmp_path, fingerprint="f1")
    snapshot = snapshot_soc(_quiescent_soc())
    key = store.key_for(CONFIG, "prefix", 3)
    assert store.get(key) is None
    store.put(key, snapshot)
    assert store.get(key) == snapshot
    assert len(store) == 1
    assert (store.stats.hits, store.stats.misses, store.stats.stores) == (1, 1, 1)
    assert "1 hits / 1 misses" in store.stats.summary()


def test_store_key_sensitivity(tmp_path):
    store = CheckpointStore(tmp_path, fingerprint="f1")
    other_code = CheckpointStore(tmp_path, fingerprint="f2")
    base = store.key_for(CONFIG, "prefix", 3)
    assert store.key_for(CONFIG, "prefix", 4) != base
    assert store.key_for(CONFIG, "other", 3) != base
    assert store.key_for(CONFIG.replace(seed=9), "prefix", 3) != base
    assert other_code.key_for(CONFIG, "prefix", 3) != base


def test_store_evicts_stale_schema(tmp_path):
    store = CheckpointStore(tmp_path, fingerprint="f1")
    key = store.key_for(CONFIG, "prefix", 0)
    store.put(key, {"schema": SCHEMA_VERSION + 1, "state": {}})
    assert store.get(key) is None
    assert store.stats.evictions == 1
    assert len(store) == 0


def test_store_evicts_corrupt_blob(tmp_path):
    store = CheckpointStore(tmp_path, fingerprint="f1")
    key = store.key_for(CONFIG, "prefix", 0)
    path = store._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"garbage")
    assert store.get(key) is None
    assert store.stats.evictions == 1


def test_gate_forced_and_env_spelling():
    assert checkpoint.enabled()  # default on
    with checkpoint.forced(False):
        assert not checkpoint.enabled()
        with checkpoint.forced(True):
            assert checkpoint.enabled()
        assert not checkpoint.enabled()
    assert checkpoint.enabled()


# -- cold vs forked bit-identity -------------------------------------------


def _result_tuple(result):
    return (result.sent, result.received, result.elapsed_fs,
            json.dumps(result.meta, sort_keys=True))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_contention_fork_bit_identical(seed):
    from repro.core.contention_channel import (
        ContentionChannel,
        ContentionChannelConfig,
    )
    from repro.core.contention_channel import fork

    channel = ContentionChannel(ContentionChannelConfig(), soc_config=CONFIG)
    cold = channel.transmit(n_bits=10, seed=seed)
    doc = snapshot_from_bytes(snapshot_bytes(fork.prepare_doc(channel, seed)))
    forked = fork.transmit_from_doc(channel, doc, n_bits=10, seed=seed)
    assert _result_tuple(forked) == _result_tuple(cold)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_llc_fork_bit_identical(seed):
    from repro.core.llc_channel import LLCChannel, LLCChannelConfig
    from repro.core.llc_channel import fork

    channel = LLCChannel(LLCChannelConfig(), soc_config=CONFIG)
    cold = channel.transmit(n_bits=10, seed=seed)
    doc = snapshot_from_bytes(snapshot_bytes(fork.prepare_doc(channel, seed)))
    forked = fork.transmit_from_doc(channel, doc, n_bits=10, seed=seed)
    assert _result_tuple(forked) == _result_tuple(cold)


def test_llc_fork_bit_identical_cpu_to_gpu():
    from repro.core.channel import ChannelDirection
    from repro.core.llc_channel import LLCChannel, LLCChannelConfig
    from repro.core.llc_channel import fork

    channel = LLCChannel(
        LLCChannelConfig(direction=ChannelDirection.CPU_TO_GPU),
        soc_config=CONFIG,
    )
    cold = channel.transmit(n_bits=10, seed=1)
    doc = fork.prepare_doc(channel, 1)
    forked = fork.transmit_from_doc(channel, doc, n_bits=10, seed=1)
    assert _result_tuple(forked) == _result_tuple(cold)


def test_fork_bit_identical_under_mitigation():
    from repro.core.llc_channel import LLCChannel, LLCChannelConfig
    from repro.core.llc_channel import fork
    from repro.mitigations import llc_way_partition

    channel = LLCChannel(
        LLCChannelConfig(mitigation=llc_way_partition()), soc_config=CONFIG
    )
    cold = channel.transmit(n_bits=10, seed=1)
    doc = fork.prepare_doc(channel, 1)
    forked = fork.transmit_from_doc(channel, doc, n_bits=10, seed=1)
    assert _result_tuple(forked) == _result_tuple(cold)


def test_fork_bit_identical_under_faults():
    import dataclasses

    from repro.core.contention_channel import (
        ContentionChannel,
        ContentionChannelConfig,
    )
    from repro.core.contention_channel import fork

    faulted = CONFIG.replace(
        faults=dataclasses.replace(CONFIG.faults, enabled=True)
    )
    channel = ContentionChannel(ContentionChannelConfig(), soc_config=faulted)
    cold = channel.transmit(n_bits=10, seed=2)
    doc = fork.prepare_doc(channel, 2)
    forked = fork.transmit_from_doc(channel, doc, n_bits=10, seed=2)
    assert _result_tuple(forked) == _result_tuple(cold)


def test_fork_doc_rejects_wrong_seed():
    from repro.core.contention_channel import (
        ContentionChannel,
        ContentionChannelConfig,
    )
    from repro.core.contention_channel import fork
    from repro.errors import ChannelProtocolError

    channel = ContentionChannel(ContentionChannelConfig(), soc_config=CONFIG)
    doc = fork.prepare_doc(channel, 1)
    with pytest.raises(ChannelProtocolError, match="seed"):
        fork.restore_prepared(channel, doc, 2)


# -- executor prefix scheduling ---------------------------------------------


def _sweep_prefix(params, seed):
    """Shared prefix: a warmed machine captured as a fork-style doc."""
    soc = SoC(CONFIG.replace(seed=seed))
    soc.rng.stream("shared").random(int(params["warm_draws"]))
    soc.quiesce()
    return {"snapshot": snapshot_soc(soc)}


def _sweep_trial(params, seed):
    """Divergent suffix: continue the shared stream, fold in a knob."""
    doc = checkpoint.resolve_state(params)
    if doc is not None:
        soc = restore_soc(CONFIG.replace(seed=seed), doc["snapshot"])
    else:
        soc = SoC(CONFIG.replace(seed=seed))
        soc.rng.stream("shared").random(int(params["warm_draws"]))
        soc.quiesce()
    draw = float(soc.rng.stream("shared").random())
    return round(draw * float(params["knob"]), 12)


def _prefix_sweep(workers):
    from repro.exec import PrefixSpec, TrialExecutor, TrialSpec

    base = {"warm_draws": 5}
    prefix = PrefixSpec(fn=_sweep_prefix, params=base, seed=11, label="t")
    specs = [
        TrialSpec(fn=_sweep_trial, params={**base, "knob": knob},
                  seed=11, prefix=prefix)
        for knob in (1.0, 2.0, 3.0)
    ]
    return TrialExecutor(workers=workers).run(specs).results()


def test_executor_prefix_serial_matches_cold():
    with checkpoint.forced(False):
        cold = _prefix_sweep(workers=0)
    with checkpoint.forced(True):
        warm = _prefix_sweep(workers=0)
    assert warm == cold
    assert len(warm) == 3


def test_executor_prefix_parallel_matches_cold():
    with checkpoint.forced(False):
        cold = _prefix_sweep(workers=2)
    with checkpoint.forced(True):
        warm = _prefix_sweep(workers=2)
    assert warm == cold


def test_executor_parallel_prefix_hits_store(tmp_path):
    from repro.exec import PrefixSpec, TrialExecutor, TrialSpec

    store = CheckpointStore(tmp_path)
    base = {"warm_draws": 5}
    prefix = PrefixSpec(fn=_sweep_prefix, params=base, seed=11, label="t")
    specs = [
        TrialSpec(fn=_sweep_trial, params={**base, "knob": knob},
                  seed=11, prefix=prefix)
        for knob in (1.0, 2.0)
    ]
    executor = TrialExecutor(workers=2, checkpoints=store)
    first = executor.run(specs).results()
    assert store.stats.stores == 1  # one group -> one blob
    # A second executor sharing the store forks without re-running the prefix.
    again = TrialExecutor(workers=2, checkpoints=store)
    second = again.run(specs).results()
    assert second == first
    assert store.stats.hits >= 1
    assert store.stats.stores == 1  # still the original blob, no re-run


def test_slot_sweep_cold_equals_warm():
    from repro.analysis.checkpoint_sweep import slot_length_sweep

    kwargs = dict(slot_lengths_us=(2.2, 3.0), n_bits=6, cal_passes=4, seed=1)
    with checkpoint.forced(False):
        cold = slot_length_sweep(**kwargs)
    with checkpoint.forced(True):
        warm = slot_length_sweep(**kwargs)
    assert cold.rows() == warm.rows()
    assert len(warm.points) == 2
