"""§VI mitigations: each must kill or neutralize its channel."""

import pytest

from repro.core.channel import ChannelDirection
from repro.core.contention_channel import (
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.llc_channel import LLCChannel, LLCChannelConfig
from repro.errors import ChannelProtocolError, ConfigError
from repro.mitigations import llc_way_partition, ring_tdm, timer_fuzzing


def _llc_result_or_dead(config, n_bits=24, seed=1):
    try:
        return LLCChannel(config).transmit(n_bits=n_bits, seed=seed)
    except ChannelProtocolError:
        return None


def test_partition_neutralizes_llc_channel():
    result = _llc_result_or_dead(
        LLCChannelConfig(mitigation=llc_way_partition())
    )
    # Either the handshake starves (dead) or the bits carry no information.
    assert result is None or result.error_rate > 0.30


def test_partition_hook_applies_to_soc(model_soc):
    from repro.gpu.device import GpuDevice

    llc_way_partition(cpu_ways=4)(model_soc, GpuDevice(model_soc))
    assert model_soc.llc_partition == {
        "cpu": (0, 1, 2, 3),
        "gpu": tuple(range(4, 16)),
    }


def test_partition_validates_share(model_soc):
    from repro.gpu.device import GpuDevice

    with pytest.raises(ConfigError):
        llc_way_partition(cpu_ways=16)(model_soc, GpuDevice(model_soc))


def test_timer_fuzzing_degrades_cpu_to_gpu_channel():
    clean = LLCChannel(
        LLCChannelConfig(direction=ChannelDirection.CPU_TO_GPU)
    ).transmit(n_bits=32, seed=2)
    fuzzed = _llc_result_or_dead(
        LLCChannelConfig(
            direction=ChannelDirection.CPU_TO_GPU,
            mitigation=timer_fuzzing(extra_noise_ticks=40.0),
        ),
        n_bits=32,
        seed=2,
    )
    if fuzzed is None:
        return  # channel outright dead: mitigation worked
    assert fuzzed.error_rate > clean.error_rate + 0.1 or (
        fuzzed.bandwidth_kbps < clean.bandwidth_kbps / 10
    )


def test_timer_fuzzing_hook_sets_device_jitter(model_soc):
    from repro.gpu.device import GpuDevice

    device = GpuDevice(model_soc)
    timer_fuzzing(extra_noise_ticks=33.0)(model_soc, device)
    assert device.extra_timer_jitter == 33.0


def test_timer_fuzzing_rejects_negative(model_soc):
    from repro.gpu.device import GpuDevice

    with pytest.raises(ConfigError):
        timer_fuzzing(extra_noise_ticks=-1.0)(model_soc, GpuDevice(model_soc))


def test_ring_tdm_kills_contention_channel():
    channel = ContentionChannel(
        ContentionChannelConfig(mitigation=ring_tdm(period_us=1.0))
    )
    calibration = channel.calibrate(seed=1)
    try:
        result = channel.transmit(n_bits=48, seed=1, calibration=calibration)
    except ChannelProtocolError:
        return
    assert result.error_rate > 0.30  # indistinguishable from guessing


def test_ring_tdm_hook_installs_schedule(model_soc):
    from repro.gpu.device import GpuDevice

    ring_tdm(period_us=2.0, cpu_share=0.25)(model_soc, GpuDevice(model_soc))
    assert model_soc.ring.tdm is not None
    assert model_soc.ring.tdm.cpu_window_fs == int(0.25 * 2.0 * 1e9)


def test_unmitigated_baseline_still_works():
    """Sanity companion: without hooks both channels stay healthy."""
    llc = LLCChannel(LLCChannelConfig()).transmit(n_bits=24, seed=1)
    assert llc.error_rate <= 0.1
    contention = ContentionChannel(ContentionChannelConfig())
    result = contention.transmit(n_bits=24, seed=1)
    assert result.error_rate <= 0.15
