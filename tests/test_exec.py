"""repro.exec: seed fan-out, caching, executor determinism, degradation, CLI."""

import dataclasses
import json
import pickle
import time

import pytest

from repro.errors import ChannelProtocolError
from repro.exec import (
    CRASH,
    DEAD,
    OK,
    TIMEOUT,
    ResultCache,
    TrialExecutor,
    TrialSpec,
    canonical_repr,
    code_fingerprint,
    derive_seed,
    fan_out_seeds,
)
from repro.exec.demo import synthetic_trial


# -- module-level trial functions (picklable into worker processes) -----


def _sleeper_trial(params, seed):
    time.sleep(float(params.get("sleep_s", 60.0)))
    return seed


def _crasher_trial(params, seed):
    raise ValueError(f"boom {seed}")


def _fast_trial(params, seed):
    return params.get("x", 0) * 1000 + seed


def _specs(noises=(0.0, 0.1, 0.3), seeds=(1, 2)):
    return [
        TrialSpec(
            fn=synthetic_trial,
            params={"n_bits": 24, "noise": noise},
            seed=seed,
        )
        for noise in noises
        for seed in seeds
    ]


def _outcome_fingerprint(report):
    """Byte-exact digest of every outcome: kind + result/error.

    Each outcome is pickled on its own: a combined dump would compare
    object *identity* across outcomes (pickle memoization), which the
    executor deliberately does not preserve — only values.
    """
    return [
        pickle.dumps((o.kind, o.result, o.error)) for o in report.outcomes
    ]


# -- seed derivation ----------------------------------------------------


def test_derive_seed_deterministic_and_bounded():
    a = derive_seed(1, "trial", 0)
    assert a == derive_seed(1, "trial", 0)
    assert 0 <= a < 2**63


def test_derive_seed_sensitive_to_every_component():
    base = derive_seed(1, "trial", 0)
    assert derive_seed(2, "trial", 0) != base
    assert derive_seed(1, "other", 0) != base
    assert derive_seed(1, "trial", 1) != base


def test_fan_out_seeds_deterministic_and_distinct():
    seeds = fan_out_seeds(7, 16)
    assert seeds == fan_out_seeds(7, 16)
    assert len(set(seeds)) == 16
    assert fan_out_seeds(7, 16, label="llc") != seeds


def test_canonical_repr_is_order_insensitive_for_dicts():
    assert canonical_repr({"a": 1, "b": 2}) == canonical_repr({"b": 2, "a": 1})
    assert canonical_repr({"a": 1}) != canonical_repr({"a": 2})


def test_canonical_repr_handles_dataclasses_and_callables():
    @dataclasses.dataclass(frozen=True)
    class Point:
        x: int
        y: int

    assert canonical_repr(Point(1, 2)) == canonical_repr(Point(1, 2))
    assert canonical_repr(Point(1, 2)) != canonical_repr(Point(1, 3))
    assert "synthetic_trial" in canonical_repr(synthetic_trial)


def test_code_fingerprint_stable():
    first = code_fingerprint()
    assert first == code_fingerprint()
    assert len(first) == 64
    assert first == code_fingerprint(refresh=True)


# -- result cache -------------------------------------------------------


def test_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = cache.key_for(synthetic_trial, {"n_bits": 8}, 3)
    assert cache.get(key) is None
    cache.put(key, OK, {"value": 42})
    assert cache.get(key) == (OK, {"value": 42})
    assert len(cache) == 1
    cache.clear()
    assert cache.get(key) is None


def test_cache_key_separates_fn_params_seed_fingerprint(tmp_path):
    cache_a = ResultCache(tmp_path, fingerprint="aaaa")
    cache_b = ResultCache(tmp_path, fingerprint="bbbb")
    base = cache_a.key_for(synthetic_trial, {"n_bits": 8}, 3)
    assert cache_a.key_for(synthetic_trial, {"n_bits": 9}, 3) != base
    assert cache_a.key_for(synthetic_trial, {"n_bits": 8}, 4) != base
    assert cache_a.key_for(_fast_trial, {"n_bits": 8}, 3) != base
    # A code change (new fingerprint) invalidates every prior entry.
    assert cache_b.key_for(synthetic_trial, {"n_bits": 8}, 3) != base


def test_cache_corrupt_entry_counts_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.key_for(synthetic_trial, {}, 1)
    cache.put(key, OK, 1)
    path = next(p for p in (tmp_path).rglob("*.pkl"))
    path.write_bytes(b"not a pickle")
    assert cache.get(key) is None
    assert not path.exists()  # corrupt entries are evicted


# -- executor determinism ----------------------------------------------


def test_serial_and_parallel_runs_are_byte_identical():
    specs = _specs()
    baseline = TrialExecutor(workers=0).run(specs)
    assert all(o.kind == OK for o in baseline.outcomes)
    for workers in (2, 8):
        report = TrialExecutor(workers=workers).run(specs)
        assert _outcome_fingerprint(report) == _outcome_fingerprint(baseline)


def test_dead_points_identical_across_worker_counts():
    specs = _specs(noises=(0.1, 0.9), seeds=(1,))
    baseline = TrialExecutor(workers=0).run(specs)
    assert [o.kind for o in baseline.outcomes] == [OK, DEAD]
    report = TrialExecutor(workers=2).run(specs)
    assert _outcome_fingerprint(report) == _outcome_fingerprint(baseline)


def test_cache_hits_equal_cold_run(tmp_path):
    specs = _specs()
    cold_exec = TrialExecutor(workers=0, cache=tmp_path / "c")
    cold = cold_exec.run(specs)
    assert cold_exec.cache.stats.misses == len(specs)
    assert cold_exec.cache.stats.stores == len(specs)

    warm_exec = TrialExecutor(workers=0, cache=tmp_path / "c")
    warm = warm_exec.run(specs)
    assert warm_exec.cache.stats.hits == len(specs)
    assert all(o.from_cache for o in warm.outcomes)
    assert _outcome_fingerprint(warm) == _outcome_fingerprint(cold)
    # No simulation happened on the warm run.
    assert warm.sim["events_executed"] == 0


def test_dead_outcomes_are_cached(tmp_path):
    specs = _specs(noises=(0.9,), seeds=(5,))
    TrialExecutor(workers=0, cache=tmp_path).run(specs)
    warm = TrialExecutor(workers=0, cache=tmp_path).run(specs)
    outcome = warm.outcomes[0]
    assert outcome.kind == DEAD
    assert outcome.from_cache
    assert "noise" in outcome.error


def test_report_sim_census_and_summary():
    report = TrialExecutor(workers=0).run(_specs(noises=(0.0,), seeds=(1,)))
    assert report.sim["engines_created"] == 1
    assert report.sim["events_executed"] > 0
    assert "trials ok" in report.summary()


# -- degradation --------------------------------------------------------


def test_crash_becomes_recorded_failure_serial():
    report = TrialExecutor(workers=0).run(
        [TrialSpec(fn=_crasher_trial, params={}, seed=9)]
    )
    outcome = report.outcomes[0]
    assert outcome.kind == CRASH
    assert "ValueError" in outcome.error
    assert "boom 9" in outcome.error


def test_crash_retried_then_recorded_parallel():
    executor = TrialExecutor(workers=1, retries=1, trial_timeout_s=60.0)
    report = executor.run([TrialSpec(fn=_crasher_trial, params={}, seed=2)])
    outcome = report.outcomes[0]
    assert outcome.kind == CRASH
    assert outcome.attempts == 2
    assert "ValueError" in outcome.error


def test_wedged_trial_times_out_without_hanging_the_sweep():
    executor = TrialExecutor(workers=1, trial_timeout_s=0.5, retries=0)
    specs = [
        TrialSpec(fn=_sleeper_trial, params={"sleep_s": 60.0}, seed=0),
        TrialSpec(fn=_fast_trial, params={"x": 1}, seed=1),
        TrialSpec(fn=_fast_trial, params={"x": 2}, seed=2),
    ]
    start = time.monotonic()
    report = executor.run(specs)
    assert time.monotonic() - start < 30.0
    assert [o.kind for o in report.outcomes] == [TIMEOUT, OK, OK]
    # The trials queued behind the wedged worker still produced results.
    assert report.outcomes[1].result == 1001
    assert report.outcomes[2].result == 2002


def test_executor_rejects_bad_configuration():
    with pytest.raises(ValueError):
        TrialExecutor(workers=-1)
    with pytest.raises(ValueError):
        TrialExecutor(trial_timeout_s=0)
    with pytest.raises(ValueError):
        TrialExecutor(retries=-1)


# -- hot-path structural guarantees ------------------------------------


def test_event_classes_have_no_instance_dict():
    from repro.sim.engine import Engine
    from repro.sim.events import Event, Timeout
    from repro.sim.process import Process

    engine = Engine()
    assert not hasattr(Event(engine), "__dict__")
    assert not hasattr(Timeout(engine, 5), "__dict__")

    def gen():
        yield Timeout(engine, 1)

    assert not hasattr(Process(engine, gen()), "__dict__")


# -- CLI ----------------------------------------------------------------


def test_cli_smoke_serial(capsys):
    from repro.exec.__main__ import main

    code = main(["--sweep", "smoke", "--no-cache", "--bits", "8", "--seeds", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "cache: disabled" in out
    assert "trials ok" in out


def test_cli_json_and_cache(tmp_path, capsys):
    from repro.exec.__main__ import main

    json_path = tmp_path / "summary.json"
    cache_dir = tmp_path / "cache"
    argv = [
        "--sweep", "smoke", "--bits", "8", "--seeds", "2",
        "--cache-dir", str(cache_dir), "--json", str(json_path),
    ]
    assert main(argv) == 0
    doc = json.loads(json_path.read_text())
    for key in ("sweep", "workers", "wall_s", "events_per_sec", "cache", "outcomes"):
        assert key in doc
    assert doc["cache"]["misses"] > 0

    capsys.readouterr()
    assert main(argv) == 0
    warm = json.loads(json_path.read_text())
    assert warm["cache"]["hits"] == doc["cache"]["misses"]
    assert warm["cache"]["misses"] == 0
    assert "100% hit rate" in capsys.readouterr().out


def _race_writer(root, key, payload, barrier, rounds):
    cache = ResultCache(root, fingerprint="race")
    for _ in range(rounds):
        barrier.wait()
        cache.put(key, "ok", payload)


def test_cache_concurrent_writers_keep_one_valid_entry(tmp_path):
    """Two writers racing on one key: atomic rename, never a torn entry."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    cache = ResultCache(tmp_path, fingerprint="race")
    key = cache.key_for(_fast_trial, {"x": 1}, 7)
    rounds = 25
    barrier = ctx.Barrier(2)
    writers = [
        ctx.Process(target=_race_writer,
                    args=(tmp_path, key, payload, barrier, rounds))
        for payload in ("from-a", "from-b")
    ]
    for w in writers:
        w.start()
    for w in writers:
        w.join(timeout=60)
        assert w.exitcode == 0
    # Exactly one entry survives, readable, holding one racer's payload.
    assert len(cache) == 1
    hit = cache.get(key)
    assert hit is not None
    kind, payload = hit
    assert kind == "ok" and payload in ("from-a", "from-b")
    assert cache.stats.evictions == 0
    # No stray .tmp files left behind by either racer.
    assert not list(tmp_path.rglob("*.tmp"))


def test_checkpoint_store_concurrent_writers(tmp_path):
    """Same discipline for checkpoint blobs: one valid JSON entry."""
    import multiprocessing

    from repro.checkpoint import CheckpointStore

    def writer(root, key, label, barrier):
        store = CheckpointStore(root, fingerprint="race")
        for _ in range(25):
            barrier.wait()
            store.put(key, {"schema": 1, "config_digest": label, "state": {}})

    ctx = multiprocessing.get_context("fork")
    store = CheckpointStore(tmp_path, fingerprint="race")
    key = store.key_for({"cfg": 1}, "prefix", 0)
    barrier = ctx.Barrier(2)
    writers = [
        ctx.Process(target=writer, args=(tmp_path, key, label, barrier))
        for label in ("a", "b")
    ]
    for w in writers:
        w.start()
    for w in writers:
        w.join(timeout=60)
        assert w.exitcode == 0
    assert len(store) == 1
    blob = store.get(key)
    assert blob is not None and blob["config_digest"] in ("a", "b")
    assert store.stats.evictions == 0
    assert not list(tmp_path.rglob("*.tmp"))
