"""CPU program verbs: timers, probes, batches, pointer chasing, noise."""

import pytest

from repro.cpu.core import CPU_MEM_PARALLELISM, CpuProgram, RDTSC_CYCLES
from repro.cpu.noise import BurstyNoiseAgent
from repro.cpu.pointer_chase import PointerChaseBuffer
from repro.errors import MemoryModelError
from repro.sim import FS_PER_US


@pytest.fixture
def program(soc):
    return CpuProgram(soc, core=0, name="unit")


def drive(soc, generator):
    return soc.engine.run_until_complete(soc.engine.process(generator))


def test_alloc_lines_count_and_alignment(soc, program):
    lines = program.alloc_lines(10)
    assert len(lines) == 10
    assert all(line % 64 == 0 for line in lines)


def test_alloc_lines_huge_contiguous(soc, program):
    lines = program.alloc_lines(4, huge=True)
    assert lines[1] - lines[0] == 64


def test_rdtsc_monotonic_and_advances(soc, program):
    def body():
        first = yield from program.rdtsc()
        second = yield from program.rdtsc()
        return first, second

    first, second = drive(soc, body())
    assert second >= first + RDTSC_CYCLES - 3


def test_timed_read_discriminates_hit_from_miss(soc, program):
    lines = program.alloc_lines(2)

    def body():
        cold = yield from program.timed_read(lines[0])
        warm = yield from program.timed_read(lines[0])
        return cold, warm

    cold, warm = drive(soc, body())
    assert cold > 3 * warm


def test_timed_probe_scales_with_set_size(soc, program):
    lines = program.alloc_lines(16)

    def body():
        yield from program.read_series(lines)
        small = yield from program.timed_probe(lines[:4])
        large = yield from program.timed_probe(lines)
        return small, large

    small, large = drive(soc, body())
    assert large > small


def test_read_batch_faster_than_serial(soc, program):
    serial_lines = program.alloc_lines(32)
    batch_lines = program.alloc_lines(32)

    def body():
        start = soc.now_fs
        yield from program.read_series(serial_lines)
        serial_time = soc.now_fs - start
        start = soc.now_fs
        yield from program.read_batch(batch_lines)
        batch_time = soc.now_fs - start
        return serial_time, batch_time

    serial_time, batch_time = drive(soc, body())
    assert batch_time < serial_time / 2  # MLP pays off on cold misses


def test_read_batch_returns_all_latencies(soc, program):
    lines = program.alloc_lines(20)

    def body():
        latencies = yield from program.read_batch(lines, parallelism=8)
        return latencies

    latencies = drive(soc, body())
    assert len(latencies) == 20
    assert all(latency > 0 for latency in latencies)


def test_clflush_generator(soc, program):
    lines = program.alloc_lines(1)

    def body():
        yield from program.read(lines[0])
        yield from program.clflush(lines[0])
        return None

    drive(soc, body())
    assert not soc.llc.contains(lines[0])


def test_wait_cycles_advances_clock(soc, program):
    def body():
        start = soc.now_fs
        yield from program.wait_cycles(100)
        return soc.now_fs - start

    assert drive(soc, body()) == soc.cpu_cycles_fs(100)


def test_default_mem_parallelism_constant():
    assert CPU_MEM_PARALLELISM == 8


# ----------------------------------------------------------------------
# Pointer chase


def test_chase_visits_every_line_once_per_pass(soc):
    space = soc.new_process("chase")
    buffer = space.mmap(64 * 64)
    chase = PointerChaseBuffer(buffer, 64, soc.rng.stream("c"))
    pass_addrs = chase.next_paddrs(chase.n_lines)
    assert sorted(pass_addrs) == sorted(buffer.line_paddrs(64))
    assert len(set(pass_addrs)) == chase.n_lines


def test_chase_is_single_cycle(soc):
    space = soc.new_process("chase2")
    buffer = space.mmap(64 * 32)
    chase = PointerChaseBuffer(buffer, 64, soc.rng.stream("c2"))
    first_pass = chase.next_paddrs(chase.n_lines)
    second_pass = chase.next_paddrs(chase.n_lines)
    assert first_pass == second_pass  # wraps around the same cycle


def test_chase_from_lines():
    import numpy as np

    lines = [k * 64 for k in range(10)]
    chase = PointerChaseBuffer.from_lines(lines, np.random.default_rng(0))
    assert sorted(chase.all_paddrs()) == lines


def test_chase_reset(soc):
    space = soc.new_process("chase3")
    buffer = space.mmap(64 * 8)
    chase = PointerChaseBuffer(buffer, 64, soc.rng.stream("c3"))
    first = chase.next_paddrs(3)
    chase.reset()
    assert chase.next_paddrs(3) == first


def test_chase_requires_two_lines(soc):
    space = soc.new_process("chase4")
    buffer = space.mmap(64)
    with pytest.raises(MemoryModelError):
        PointerChaseBuffer(buffer, 64, soc.rng.stream("c4"))


def test_chase_generator_accounts_time(soc, program):
    space = program.space
    buffer = space.mmap(64 * 32)
    chase = PointerChaseBuffer(buffer, 64, soc.rng.stream("c5"))

    def body():
        elapsed = yield from chase.chase(program, 10)
        return elapsed

    assert drive(soc, body()) > 0


# ----------------------------------------------------------------------
# Bursty noise agent


def test_bursty_noise_start_stop(soc):
    agent = BurstyNoiseAgent(soc, core=3, mean_quiet_s=1e-6, mean_burst_s=20e-6)
    agent.start()
    misses_before = soc.llc.misses
    soc.engine.run(until_fs=soc.engine.now + 200 * FS_PER_US)
    assert soc.llc.misses > misses_before
    agent.stop()
    soc.engine.run(until_fs=soc.engine.now + 10 * FS_PER_US)


def test_bursty_noise_double_start_is_noop(soc):
    agent = BurstyNoiseAgent(soc, core=3)
    agent.start()
    agent.start()  # no exception
    agent.stop()
