"""Configuration validation and preset tests."""

import dataclasses

import pytest

from repro.config import (
    ClockConfig,
    CpuCacheConfig,
    DramConfig,
    GpuConfig,
    GpuL3Config,
    LlcConfig,
    MmuConfig,
    NoiseConfig,
    ObservabilityConfig,
    RingConfig,
    SLICE_HASH_S0_BITS,
    SLICE_HASH_S1_BITS,
    SlmConfig,
    SoCConfig,
    kaby_lake,
    kaby_lake_model,
    scale_bytes,
)
from repro.errors import ConfigError


def test_kaby_lake_validates():
    config = kaby_lake()
    assert config.llc.total_bytes == 8 * 1024 * 1024
    assert config.llc.slices == 4
    assert config.llc.ways == 16
    assert config.cpu_cores == 4


def test_clock_ratio_near_four():
    config = kaby_lake()
    assert config.clock_ratio == pytest.approx(4.2 / 1.1)


def test_cpu_clock_cycle_length():
    clock = ClockConfig(4.2e9)
    assert clock.cycle_fs == round(1e15 / 4.2e9)
    assert clock.cycles_fs(10) == pytest.approx(10 * clock.cycle_fs, rel=1e-6)


def test_clock_rejects_nonpositive_frequency():
    with pytest.raises(ConfigError):
        ClockConfig(0).validate()


def test_l3_default_capacity_matches_paper_data_array():
    config = GpuL3Config()
    assert config.total_bytes == 512 * 1024
    assert config.total_sets == 1024
    assert config.placement_bits == 16  # 6 offset + 10 set/bank/sub-bank


def test_l3_rejects_non_pow2_banks():
    with pytest.raises(ConfigError):
        dataclasses.replace(GpuL3Config(), banks=3).validate()


def test_llc_set_and_offset_bits():
    config = LlcConfig()
    assert config.offset_bits == 6
    assert config.set_index_bits == 11


def test_llc_rejects_bad_slice_count():
    with pytest.raises(ConfigError):
        dataclasses.replace(LlcConfig(), slices=3).validate()


def test_slice_hash_bits_match_paper_equations():
    # Eq. (1): S0 over 19 bits, Eq. (2): S1 over 19 bits.
    assert len(SLICE_HASH_S0_BITS) == 19
    assert len(SLICE_HASH_S1_BITS) == 19
    assert 6 in SLICE_HASH_S0_BITS and 36 in SLICE_HASH_S0_BITS
    assert 7 in SLICE_HASH_S1_BITS and 37 in SLICE_HASH_S1_BITS


def test_ring_slots_per_line():
    ring = RingConfig()
    assert ring.slots_per_line(64) == 2
    assert ring.slots_per_line(32) == 1
    assert ring.slots_per_line(65) == 3


def test_ring_rejects_zero_slot_cycles():
    with pytest.raises(ConfigError):
        dataclasses.replace(RingConfig(), slot_cycles=0).validate()


def test_dram_probability_bounds():
    with pytest.raises(ConfigError):
        dataclasses.replace(DramConfig(), row_hit_probability=1.5).validate()


def test_slm_glitch_probability_bounds():
    with pytest.raises(ConfigError):
        dataclasses.replace(SlmConfig(), read_glitch_probability=-0.1).validate()


def test_gpu_workgroup_limit_multiple_of_wavefront():
    with pytest.raises(ConfigError):
        dataclasses.replace(GpuConfig(), max_threads_per_workgroup=100).validate()


def test_gpu_workgroups_per_subslice():
    config = GpuConfig()
    # 8 EUs x 7 threads x SIMD32 = 1792 work-items -> 7 WGs of 256.
    assert config.workgroups_per_subslice(256) == 7
    assert config.workgroups_per_subslice(1792) == 1


def test_gpu_total_subslices():
    assert GpuConfig().total_subslices == 3


def test_mmu_rejects_tiny_huge_pages():
    with pytest.raises(ConfigError):
        dataclasses.replace(MmuConfig(), huge_page_bytes=2048).validate()


def test_noise_validation():
    with pytest.raises(ConfigError):
        dataclasses.replace(NoiseConfig(), os_tick_period_us=0).validate()


def test_cpu_cache_capacities():
    config = CpuCacheConfig()
    assert config.l1_bytes == 32 * 1024
    assert config.l2_bytes == 256 * 1024


def test_soc_replace_validates():
    config = kaby_lake()
    with pytest.raises(ConfigError):
        config.replace(cpu_cores=0)


def test_soc_requires_consistent_line_sizes():
    config = kaby_lake()
    with pytest.raises(ConfigError):
        config.replace(llc=dataclasses.replace(config.llc, line_bytes=128))


def test_model_scale_preserves_structure():
    full = kaby_lake()
    model = kaby_lake_model(scale=16)
    assert model.llc.slices == full.llc.slices
    assert model.llc.ways == full.llc.ways
    assert model.llc.line_bytes == full.llc.line_bytes
    assert model.gpu_l3.ways == full.gpu_l3.ways
    assert model.clock_ratio == full.clock_ratio
    assert model.llc.total_bytes == full.llc.total_bytes // 16


def test_model_scale_rejects_non_pow2():
    with pytest.raises(ConfigError):
        kaby_lake_model(scale=3)


def test_scale_bytes_preserves_llc_ratio():
    model = kaby_lake_model(scale=16)
    scaled = scale_bytes(model, 2 * 1024 * 1024)
    assert scaled == 2 * 1024 * 1024 // 16


def test_scale_bytes_full_scale_identity():
    full = kaby_lake()
    assert scale_bytes(full, 512 * 1024) == 512 * 1024


def test_scale_bytes_line_aligned():
    model = kaby_lake_model(scale=16)
    assert scale_bytes(model, 1000) % model.llc.line_bytes == 0


def test_seed_flows_into_config():
    assert kaby_lake(seed=9).seed == 9


def test_observability_defaults_validate():
    config = ObservabilityConfig()
    config.validate()
    assert not config.enabled
    assert config.trace_path is None
    assert config.event_allowlist is None
    assert config.histogram_reservoir == 256


def test_observability_rejects_tiny_reservoir():
    with pytest.raises(ConfigError):
        ObservabilityConfig(histogram_reservoir=1).validate()


def test_observability_rejects_empty_trace_path():
    with pytest.raises(ConfigError):
        ObservabilityConfig(trace_path="").validate()


def test_observability_rejects_unknown_event():
    with pytest.raises(ConfigError):
        ObservabilityConfig(event_allowlist=("no.such.event",)).validate()


def test_observability_accepts_known_events():
    ObservabilityConfig(event_allowlist=("ring.hop", "cache.access")).validate()


def test_soc_config_carries_observability():
    config = kaby_lake()
    assert isinstance(config.obs, ObservabilityConfig)
    assert not config.obs.enabled
    enabled = config.replace(obs=ObservabilityConfig(enabled=True))
    enabled.validate()
    assert enabled.obs.enabled


def test_soc_config_validates_observability():
    config = kaby_lake()
    with pytest.raises(ConfigError):
        config.replace(obs=ObservabilityConfig(histogram_reservoir=0))
