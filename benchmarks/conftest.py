"""Shared helpers for the per-figure benchmark harnesses.

Every ``bench_fig*`` module regenerates one evaluation artifact of the
paper: it runs the experiment, prints the measured rows next to the
paper-reported values, and records the text report under
``benchmarks/results/`` (EXPERIMENTS.md is written from those reports).

Each report carries a simulation-cost footer (engines created, total
engine events executed, final simulated clock) collected by an
:class:`repro.obs.EngineCensus` armed for the duration of the test —
including work done in executor worker processes, which publish their
merged census back to the parent.

Alongside the text report every figure writes a machine-readable
``BENCH_<name>.json``: wall seconds, events executed and events/sec,
keyed by worker count, so a parallel run records its speedup against the
serial baseline in the same file.  Set ``REPRO_BENCH_WORKERS=N`` to fan
the executor-backed harnesses across N worker processes (default 0 =
serial; the figure data is bit-identical either way).
"""

import json
import os
import pathlib
import time
import typing

import pytest

from repro.obs import EngineCensus
from repro.obs.drift import channel_drift_warnings, committed_channels
from repro.obs.ledger import append_record, default_ledger_path, make_record
from repro.obs.telemetry import bench_run_record

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Worker-process count for the executor-backed figure harnesses.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or "0")

#: One code fingerprint per bench session (hashing the tree is ~ms, but
#: every figure appends a ledger record and they all share it).
_FINGERPRINT: typing.Optional[str] = None


def _session_fingerprint() -> str:
    global _FINGERPRINT
    if _FINGERPRINT is None:
        from repro.exec.fingerprint import code_fingerprint

        _FINGERPRINT = code_fingerprint()
    return _FINGERPRINT


def _ledger_path() -> typing.Optional[pathlib.Path]:
    """Bench runs ledger by default, under results/; REPRO_LEDGER overrides."""
    if os.environ.get("REPRO_LEDGER", "").strip():
        return default_ledger_path()
    return RESULTS_DIR / "LEDGER.jsonl"


def append_ledger_record(
    name: str,
    kind: str,
    run: typing.Dict[str, object],
    warnings: typing.Sequence[str] = (),
    predictions: typing.Optional[typing.Dict[str, object]] = None,
) -> None:
    """Append one provenance record for a bench run (never fails the bench)."""
    path = _ledger_path()
    if path is None:
        return
    record = make_record(
        name=name,
        kind=kind,
        run=run,
        channels=typing.cast(
            typing.Optional[typing.Dict[str, object]], run.get("channels")
        ),
        warnings=warnings,
        fingerprint=_session_fingerprint(),
        predictions=predictions,
    )
    try:
        append_record(path, record)
    except OSError as exc:  # read-only checkout etc.
        print(f"ledger: skipped ({exc})")


@pytest.fixture
def bench_workers() -> int:
    """How many executor workers this bench run was asked to use."""
    return BENCH_WORKERS


def report(name: str, title: str, body: str, footer: str = "") -> None:
    """Print a figure report and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n{body}\n"
    if footer:
        text += f"{footer}\n"
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def _load_json(path: pathlib.Path, default: dict) -> dict:
    if path.exists():
        try:
            return json.loads(path.read_text())
        except ValueError:
            pass
    return default


def record_bench_json(name: str, run: typing.Dict[str, object]) -> pathlib.Path:
    """Merge one run record into ``results/BENCH_<name>.json``.

    Runs are keyed by worker count; when both a serial (``"0"``) and a
    parallel run are present, each parallel run gains
    ``speedup_vs_serial`` so the artifact answers "what did the pool
    buy" directly.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    doc = _load_json(path, {"name": name, "runs": {}})
    runs = doc.setdefault("runs", {})
    runs[str(run.get("workers", 0))] = run
    serial = runs.get("0")
    for run_key, entry in runs.items():
        if not isinstance(entry, dict):
            continue
        if run_key != "0" and serial and serial.get("wall_s") and entry.get("wall_s"):
            entry["speedup_vs_serial"] = round(
                typing.cast(float, serial["wall_s"])
                / typing.cast(float, entry["wall_s"]),
                3,
            )
        else:
            entry.pop("speedup_vs_serial", None)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def record_core_metric(bench: str, metric: str, value: float) -> None:
    """Record one scalar (e.g. events/sec) in ``BENCH_<bench>.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{bench}.json"
    doc = _load_json(path, {"name": bench, "metrics": {}})
    doc.setdefault("metrics", {})[metric] = round(value, 1)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    append_ledger_record(bench, "core", {metric: round(value, 1)})


@pytest.fixture
def figure_report():
    """``report`` + census footer, BENCH_<name>.json, drift check, ledger.

    Pass ``channels={"llc": aggregate.as_dict(), ...}`` to record
    per-channel health (bandwidth/BER with CIs) in the BENCH artifact;
    the same dict is z-score drift-checked against the channels in the
    *committed* BENCH_<name>.json (via ``git show``), and any drift
    warnings land in the report footer and the run ledger.
    """
    with EngineCensus() as census:
        start = time.perf_counter()

        def _report(
            name: str,
            title: str,
            body: str,
            channels: typing.Optional[typing.Dict[str, object]] = None,
        ) -> None:
            wall_s = time.perf_counter() - start
            run = bench_run_record(
                workers=BENCH_WORKERS,
                wall_s=wall_s,
                census=census,
                channels=channels,
            )
            warnings: typing.List[str] = []
            if channels:
                baseline = committed_channels(
                    name,
                    repo_root=RESULTS_DIR.parent.parent,
                    workers=BENCH_WORKERS,
                )
                if baseline:
                    warnings = channel_drift_warnings(
                        typing.cast(typing.Dict[str, typing.Dict], channels),
                        baseline,
                    )
            footer = census.footer()
            if warnings:
                footer += "\n" + "\n".join(f"DRIFT: {w}" for w in warnings)
            report(name, title, body, footer=footer)
            record_bench_json(name, run)
            append_ledger_record(name, "figure", run, warnings=warnings)

        yield _report
