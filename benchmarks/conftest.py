"""Shared helpers for the per-figure benchmark harnesses.

Every ``bench_fig*`` module regenerates one evaluation artifact of the
paper: it runs the experiment, prints the measured rows next to the
paper-reported values, and records the text report under
``benchmarks/results/`` (EXPERIMENTS.md is written from those reports).

Each report carries a simulation-cost footer (engines created, total
engine events executed, final simulated clock) collected by an
:class:`repro.obs.EngineCensus` armed for the duration of the test —
including work done in executor worker processes, which publish their
merged census back to the parent.

Alongside the text report every figure writes a machine-readable
``BENCH_<name>.json``: wall seconds, events executed and events/sec,
keyed by worker count, so a parallel run records its speedup against the
serial baseline in the same file.  Set ``REPRO_BENCH_WORKERS=N`` to fan
the executor-backed harnesses across N worker processes (default 0 =
serial; the figure data is bit-identical either way).
"""

import json
import os
import pathlib
import time
import typing

import pytest

from repro.obs import EngineCensus

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Worker-process count for the executor-backed figure harnesses.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or "0")


@pytest.fixture
def bench_workers() -> int:
    """How many executor workers this bench run was asked to use."""
    return BENCH_WORKERS


def report(name: str, title: str, body: str, footer: str = "") -> None:
    """Print a figure report and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n{body}\n"
    if footer:
        text += f"{footer}\n"
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def _load_json(path: pathlib.Path, default: dict) -> dict:
    if path.exists():
        try:
            return json.loads(path.read_text())
        except ValueError:
            pass
    return default


def record_bench_json(name: str, run: typing.Dict[str, object]) -> pathlib.Path:
    """Merge one run record into ``results/BENCH_<name>.json``.

    Runs are keyed by worker count; when both a serial (``"0"``) and a
    parallel run are present, each parallel run gains
    ``speedup_vs_serial`` so the artifact answers "what did the pool
    buy" directly.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    doc = _load_json(path, {"name": name, "runs": {}})
    runs = doc.setdefault("runs", {})
    runs[str(run.get("workers", 0))] = run
    serial = runs.get("0")
    for run_key, entry in runs.items():
        if not isinstance(entry, dict):
            continue
        if run_key != "0" and serial and serial.get("wall_s") and entry.get("wall_s"):
            entry["speedup_vs_serial"] = round(
                typing.cast(float, serial["wall_s"])
                / typing.cast(float, entry["wall_s"]),
                3,
            )
        else:
            entry.pop("speedup_vs_serial", None)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def record_core_metric(bench: str, metric: str, value: float) -> None:
    """Record one scalar (e.g. events/sec) in ``BENCH_<bench>.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{bench}.json"
    doc = _load_json(path, {"name": bench, "metrics": {}})
    doc.setdefault("metrics", {})[metric] = round(value, 1)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def figure_report():
    """``report`` with the census footer and BENCH_<name>.json appended."""
    with EngineCensus() as census:
        start = time.perf_counter()

        def _report(name: str, title: str, body: str) -> None:
            wall_s = time.perf_counter() - start
            report(name, title, body, footer=census.footer())
            record_bench_json(
                name,
                {
                    "workers": BENCH_WORKERS,
                    "wall_s": round(wall_s, 4),
                    "engines": census.engines_created,
                    "events_executed": census.events_executed,
                    "events_per_sec": round(census.events_executed / wall_s, 1)
                    if wall_s > 0
                    else 0.0,
                },
            )

        yield _report
