"""Shared helpers for the per-figure benchmark harnesses.

Every ``bench_fig*`` module regenerates one evaluation artifact of the
paper: it runs the experiment, prints the measured rows next to the
paper-reported values, and records the text report under
``benchmarks/results/`` (EXPERIMENTS.md is written from those reports).

Each report carries a simulation-cost footer (engines created, total
engine events executed, final simulated clock) collected by an
:class:`repro.obs.EngineCensus` armed for the duration of the test.
"""

import pathlib

import pytest

from repro.obs import EngineCensus

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, title: str, body: str, footer: str = "") -> None:
    """Print a figure report and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n{body}\n"
    if footer:
        text += f"{footer}\n"
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


@pytest.fixture
def figure_report():
    """``report`` with the census footer appended automatically."""
    with EngineCensus() as census:

        def _report(name: str, title: str, body: str) -> None:
            report(name, title, body, footer=census.footer())

        yield _report
