"""Shared helpers for the per-figure benchmark harnesses.

Every ``bench_fig*`` module regenerates one evaluation artifact of the
paper: it runs the experiment, prints the measured rows next to the
paper-reported values, and records the text report under
``benchmarks/results/`` (EXPERIMENTS.md is written from those reports).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, title: str, body: str) -> None:
    """Print a figure report and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n{body}\n"
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


@pytest.fixture
def figure_report():
    return report
