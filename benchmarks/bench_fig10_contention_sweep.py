"""Fig. 10 — contention channel bandwidth and error sweep.

Paper: CPU buffer 512 KB; GPU buffers 1 MB and 2 MB; work-group counts on
the X axis; 95% CIs over repeated runs.  Bandwidth sits in a narrow
390-402 kb/s band; error is below 2% over >90% of the space with the
minimum (0.82%) at 2 MB / 2 work-groups.

The second harness is the batched contention sweep: the same
work-group axis swept through the raw contention trial family
(:mod:`repro.analysis.contention_sweep`), once through the serial
oracle and once through the lockstep batch tier at worker counts 0, 2
and 8.  Outcomes must be bit-identical in every configuration; the
wall-clock ratio lands in ``BENCH_fig10.json`` under ``batch`` with a
``speedup_vs_serial`` per row and an absolute ≥5x acceptance floor that
``check_bench_regression.py`` re-checks against the committed artifact.
"""

import json
import time

from conftest import RESULTS_DIR, _load_json, append_ledger_record, report

from repro.analysis import contention_sweep
from repro.analysis.figures import fig10_contention_sweep
from repro.analysis.render import format_table
from repro.exec import TrialExecutor, TrialSpec
from repro.obs import EngineCensus
from repro.obs.telemetry import bench_run_record
from repro.sim.batch import gate as batch_gate

MB = 1024 * 1024

SWEEP_WORKGROUPS = (1, 2, 4, 8)
SWEEP_SEEDS = 48
SWEEP_SLOTS = 16
SWEEP_WORKER_COUNTS = (0, 2, 8)
ACCEPTANCE_SPEEDUP = 5.0


def test_fig10_contention_sweep(benchmark, figure_report, bench_workers):
    data = benchmark.pedantic(
        fig10_contention_sweep,
        kwargs={
            "workgroup_counts": (1, 2, 4, 8),
            "gpu_buffer_sizes": (1 * MB, 2 * MB),
            "n_bits": 96,
            "seeds": (1, 2, 3),
            "workers": bench_workers,
        },
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["WGs", "gpu buffer", "kb/s", "err %", "err ±95%", "I_F"], data.rows()
    )
    paper = "\n".join(f"paper {k}: {v}" for k, v in data.paper.items())
    figure_report(
        "fig10",
        "Fig. 10: contention channel sweep",
        table + "\n" + paper,
        channels={
            f"wg{p.n_workgroups}:gpu{p.gpu_buffer_paper_bytes // MB}MB":
                p.aggregate.as_dict()
            for p in data.points
        },
    )

    best = data.best()
    # The error minimum sits in the small-work-group region (paper: 2 WGs).
    assert best.n_workgroups in (2, 4)
    assert best.aggregate.error_percent < 2.0
    # Bandwidth stays in one band across the healthy region.
    healthy = [
        p.aggregate.bandwidth_kbps
        for p in data.points
        if p.aggregate.error_percent < 10
    ]
    assert healthy and max(healthy) < 1.4 * min(healthy)


def _sweep_specs():
    return [
        TrialSpec(
            fn=contention_sweep.contention_trial,
            params={"n_slots": SWEEP_SLOTS, "n_workgroups": wg},
            seed=1000 + s,
        )
        for wg in SWEEP_WORKGROUPS
        for s in range(SWEEP_SEEDS)
    ]


def _run_sweep(batch, workers):
    executor = TrialExecutor(workers=workers)
    with batch_gate.forced(batch):
        with EngineCensus() as census:
            t0 = time.perf_counter()
            outcomes = executor.run(_sweep_specs()).outcomes
            wall = time.perf_counter() - t0
    out = [(o.index, o.kind, o.result) for o in outcomes]
    return out, wall, census, executor.last_batch_plans


def test_fig10_contention_batched_sweep(benchmark):
    def run():
        serial = _run_sweep(batch=False, workers=0)
        batched = {w: _run_sweep(batch=True, workers=w)
                   for w in SWEEP_WORKER_COUNTS}
        return serial, batched

    (serial_out, serial_wall, census, _), batched = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    events = census.events_executed

    # The contract before the speedup: every worker count reproduces the
    # serial oracle bit for bit.
    for workers, (out, _wall, _census, _plans) in batched.items():
        assert out == serial_out, f"workers={workers} diverged from the oracle"

    n_trials = len(_sweep_specs())
    rows = [
        ["serial", f"{serial_wall:.3f}", f"{events / serial_wall:,.0f}", "1.00"]
    ]
    runs = {
        "serial": bench_run_record(
            workers=0,
            wall_s=serial_wall,
            census=census,
            engine="serial",
            batch_width=1,
            batch_width_source="serial",
        )
    }
    for workers, (_out, wall, _census, plans) in sorted(batched.items()):
        speedup = serial_wall / wall
        rows.append(
            [f"batched w{workers}", f"{wall:.3f}",
             f"{events / wall:,.0f}", f"{speedup:.2f}"]
        )
        record = bench_run_record(
            workers=workers,
            wall_s=wall,
            sim={"engines_created": 0, "events_executed": events},
            engine="batched",
            batch_width=int(plans[0]["width"]) if plans else 0,
            batch_width_source=str(plans[0]["source"]) if plans else "auto",
        )
        record["speedup_vs_serial"] = round(speedup, 3)
        runs[f"batched_w{workers}"] = record

    table = format_table(["run", "wall s", "agg events/s", "speedup"], rows)
    best_workers = max(batched, key=lambda w: serial_wall / batched[w][1])
    best_speedup = serial_wall / batched[best_workers][1]
    report(
        "fig10_batch",
        f"Batched contention sweep: {n_trials} trials "
        f"({SWEEP_SLOTS} slots, WGs {SWEEP_WORKGROUPS}), serial oracle vs "
        "lockstep lanes (outcomes bit-identical)",
        table,
        footer=f"best: workers {best_workers} at {best_speedup:.2f}x\n"
        + census.footer(),
    )

    # The batch block rides inside BENCH_fig10.json next to the figure
    # runs; check_bench_regression.py re-checks the floor on commit.
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_fig10.json"
    doc = _load_json(path, {"name": "fig10", "runs": {}})
    doc["batch"] = {
        "trials": n_trials,
        "n_slots": SWEEP_SLOTS,
        "events_executed": events,
        "acceptance_floor_speedup": ACCEPTANCE_SPEEDUP,
        "runs": runs,
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    append_ledger_record(
        "fig10_batch", "bench", runs[f"batched_w{best_workers}"]
    )

    assert best_speedup >= ACCEPTANCE_SPEEDUP, (
        f"batched contention sweep bought only {best_speedup:.2f}x over the "
        f"serial oracle (acceptance floor {ACCEPTANCE_SPEEDUP}x)"
    )
