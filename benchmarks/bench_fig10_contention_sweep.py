"""Fig. 10 — contention channel bandwidth and error sweep.

Paper: CPU buffer 512 KB; GPU buffers 1 MB and 2 MB; work-group counts on
the X axis; 95% CIs over repeated runs.  Bandwidth sits in a narrow
390-402 kb/s band; error is below 2% over >90% of the space with the
minimum (0.82%) at 2 MB / 2 work-groups.
"""

from repro.analysis.figures import fig10_contention_sweep
from repro.analysis.render import format_table

MB = 1024 * 1024


def test_fig10_contention_sweep(benchmark, figure_report, bench_workers):
    data = benchmark.pedantic(
        fig10_contention_sweep,
        kwargs={
            "workgroup_counts": (1, 2, 4, 8),
            "gpu_buffer_sizes": (1 * MB, 2 * MB),
            "n_bits": 96,
            "seeds": (1, 2, 3),
            "workers": bench_workers,
        },
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["WGs", "gpu buffer", "kb/s", "err %", "err ±95%", "I_F"], data.rows()
    )
    paper = "\n".join(f"paper {k}: {v}" for k, v in data.paper.items())
    figure_report(
        "fig10",
        "Fig. 10: contention channel sweep",
        table + "\n" + paper,
        channels={
            f"wg{p.n_workgroups}:gpu{p.gpu_buffer_paper_bytes // MB}MB":
                p.aggregate.as_dict()
            for p in data.points
        },
    )

    best = data.best()
    # The error minimum sits in the small-work-group region (paper: 2 WGs).
    assert best.n_workgroups in (2, 4)
    assert best.aggregate.error_percent < 2.0
    # Bandwidth stays in one band across the healthy region.
    healthy = [
        p.aggregate.bandwidth_kbps
        for p in data.points
        if p.aggregate.error_percent < 10
    ]
    assert healthy and max(healthy) < 1.4 * min(healthy)
