"""§VI mitigation ablations: each defense vs the channel it targets.

Paper §VI proposes LLC partitioning, CPU/GPU traffic isolation on the
interconnect, and timer-noise injection.  A successful mitigation either
starves the handshake (no transmission at all) or pushes the error toward
50% (zero mutual information).

Each (channel, mitigation) arm is one executor trial.  The mitigation
hooks are closures, so trials carry the *factory name* and construct the
hook inside the worker — that keeps the params picklable for
``REPRO_BENCH_WORKERS>0`` runs.
"""

import typing

from repro.analysis.render import format_table
from repro.core.channel import ChannelDirection
from repro.core.contention_channel import (
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.llc_channel import LLCChannel, LLCChannelConfig
from repro.exec import DEAD, TrialExecutor, TrialSpec
from repro.mitigations import llc_way_partition, ring_tdm, timer_fuzzing

MITIGATION_FACTORIES: typing.Dict[str, typing.Callable] = {
    "way_partition": llc_way_partition,
    "ring_tdm": ring_tdm,
    "timer_fuzzing": timer_fuzzing,
}


def _make_mitigation(params: typing.Dict[str, object]):
    name = params.get("mitigation")
    if name is None:
        return None
    return MITIGATION_FACTORIES[typing.cast(str, name)]()


def _llc_trial(params: typing.Dict[str, object], seed: int):
    config = LLCChannelConfig(
        direction=typing.cast(
            ChannelDirection, params.get("direction", ChannelDirection.GPU_TO_CPU)
        ),
        mitigation=_make_mitigation(params),
    )
    return LLCChannel(config).transmit(
        n_bits=typing.cast(int, params["n_bits"]), seed=seed
    )


def _contention_trial(params: typing.Dict[str, object], seed: int):
    channel = ContentionChannel(
        ContentionChannelConfig(mitigation=_make_mitigation(params))
    )
    calibration = channel.calibrate(seed=seed)
    return channel.transmit(
        n_bits=typing.cast(int, params["n_bits"]),
        seed=seed,
        calibration=calibration,
    )


def _row(label: str, outcome) -> typing.Tuple[object, ...]:
    if outcome.ok:
        result = outcome.result
        return (label, round(result.bandwidth_kbps, 1),
                round(result.error_percent, 1))
    assert outcome.kind == DEAD, outcome.error
    return (label, 0.0, "dead")


def test_mitigation_ablations(benchmark, figure_report, bench_workers):
    arms = [
        ("llc channel, none",
         TrialSpec(fn=_llc_trial, params={"n_bits": 32}, seed=1)),
        ("llc channel, way partition",
         TrialSpec(fn=_llc_trial,
                   params={"n_bits": 32, "mitigation": "way_partition"},
                   seed=1)),
        ("llc c2g, none",
         TrialSpec(fn=_llc_trial,
                   params={"n_bits": 32,
                           "direction": ChannelDirection.CPU_TO_GPU},
                   seed=1)),
        ("llc c2g, timer fuzzing",
         TrialSpec(fn=_llc_trial,
                   params={"n_bits": 32,
                           "direction": ChannelDirection.CPU_TO_GPU,
                           "mitigation": "timer_fuzzing"},
                   seed=1)),
        ("contention, none",
         TrialSpec(fn=_contention_trial, params={"n_bits": 48}, seed=1)),
        ("contention, ring TDM",
         TrialSpec(fn=_contention_trial,
                   params={"n_bits": 48, "mitigation": "ring_tdm"},
                   seed=1)),
    ]

    def run_all():
        executor = TrialExecutor(workers=bench_workers)
        report = executor.run([spec for _, spec in arms])
        return [
            _row(label, outcome)
            for (label, _), outcome in zip(arms, report.outcomes)
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(["configuration", "kb/s", "err %"], rows)
    figure_report(
        "mitigations",
        "§VI mitigation ablations",
        table,
        channels={
            label.replace(", ", ":").replace(" ", "_"): {
                "bandwidth_kbps": float(kbps),
                "error_percent": float(err) if err != "dead" else 100.0,
                "dead": int(err == "dead"),
            }
            for label, kbps, err in rows
        },
    )

    by_label = {row[0]: row for row in rows}
    partitioned = by_label["llc channel, way partition"]
    assert partitioned[2] == "dead" or float(partitioned[2]) > 30
    tdm = by_label["contention, ring TDM"]
    assert tdm[2] == "dead" or float(tdm[2]) > 30
    fuzzed = by_label["llc c2g, timer fuzzing"]
    clean = by_label["llc c2g, none"]
    assert fuzzed[2] == "dead" or (
        float(fuzzed[2]) > float(clean[2]) or fuzzed[1] < clean[1] / 5
    )
