"""§VI mitigation ablations: each defense vs the channel it targets.

Paper §VI proposes LLC partitioning, CPU/GPU traffic isolation on the
interconnect, and timer-noise injection.  A successful mitigation either
starves the handshake (no transmission at all) or pushes the error toward
50% (zero mutual information).
"""

from repro.analysis.render import format_table
from repro.core.channel import ChannelDirection
from repro.core.contention_channel import (
    ContentionChannel,
    ContentionChannelConfig,
)
from repro.core.llc_channel import LLCChannel, LLCChannelConfig
from repro.errors import ChannelProtocolError
from repro.mitigations import llc_way_partition, ring_tdm, timer_fuzzing


def _llc_row(label, config, n_bits=32, seed=1):
    try:
        result = LLCChannel(config).transmit(n_bits=n_bits, seed=seed)
        return (label, round(result.bandwidth_kbps, 1),
                round(result.error_percent, 1))
    except ChannelProtocolError:
        return (label, 0.0, "dead")


def test_mitigation_ablations(benchmark, figure_report):
    def run_all():
        rows = [
            _llc_row("llc channel, none", LLCChannelConfig()),
            _llc_row(
                "llc channel, way partition",
                LLCChannelConfig(mitigation=llc_way_partition()),
            ),
            _llc_row(
                "llc c2g, none",
                LLCChannelConfig(direction=ChannelDirection.CPU_TO_GPU),
            ),
            _llc_row(
                "llc c2g, timer fuzzing",
                LLCChannelConfig(
                    direction=ChannelDirection.CPU_TO_GPU,
                    mitigation=timer_fuzzing(),
                ),
            ),
        ]
        for label, mitigation in [
            ("contention, none", None),
            ("contention, ring TDM", ring_tdm()),
        ]:
            channel = ContentionChannel(
                ContentionChannelConfig(mitigation=mitigation)
            )
            calibration = channel.calibrate(seed=1)
            try:
                result = channel.transmit(n_bits=48, seed=1, calibration=calibration)
                rows.append(
                    (label, round(result.bandwidth_kbps, 1),
                     round(result.error_percent, 1))
                )
            except ChannelProtocolError:
                rows.append((label, 0.0, "dead"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(["configuration", "kb/s", "err %"], rows)
    figure_report("mitigations", "§VI mitigation ablations", table)

    by_label = {row[0]: row for row in rows}
    partitioned = by_label["llc channel, way partition"]
    assert partitioned[2] == "dead" or float(partitioned[2]) > 30
    tdm = by_label["contention, ring TDM"]
    assert tdm[2] == "dead" or float(tdm[2]) > 30
    fuzzed = by_label["llc c2g, timer fuzzing"]
    clean = by_label["llc c2g, none"]
    assert fuzzed[2] == "dead" or (
        float(fuzzed[2]) > float(clean[2]) or fuzzed[1] < clean[1] / 5
    )
