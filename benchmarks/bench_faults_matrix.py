"""Faults robustness matrix — serial oracle vs lockstep batch tier.

The ``contention-sweep`` matrix channel runs the raw contention trial
family (the one with a registered lockstep kernel), so the whole
intensity grid batches: trials at different fault intensities share one
kernel shape and advance together.  The matrix aggregates must be
identical either way — batching is a scheduling decision — and the
wall-clock ratio lands in ``BENCH_faults_matrix.json`` with
``speedup_vs_serial`` on the batched row.

The graceful-degradation contract itself (no crashes, BER under the
ceiling, monotone-ish in intensity) is asserted here too, so the bench
doubles as the robustness smoke test at a payload size the tier-1 suite
cannot afford.
"""

import dataclasses
import json
import time

from conftest import RESULTS_DIR, append_ledger_record, report

from repro.faults.matrix import run_matrix
from repro.obs import EngineCensus
from repro.obs.telemetry import bench_run_record
from repro.sim.batch import gate as batch_gate

N_BITS = 24
N_SEEDS = 6
ROOT_SEED = 1


def _run(batch):
    with batch_gate.forced(batch):
        with EngineCensus() as census:
            t0 = time.perf_counter()
            result = run_matrix(
                channel="contention-sweep", n_bits=N_BITS, n_seeds=N_SEEDS,
                root_seed=ROOT_SEED,
            )
            wall = time.perf_counter() - t0
    return result, wall, census


def test_faults_matrix_batched(benchmark):
    def run():
        return _run(batch=False), _run(batch=True)

    (serial, serial_wall, census), (batched, batched_wall, _) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    events = census.events_executed

    assert [dataclasses.asdict(p) for p in batched.points] == [
        dataclasses.asdict(p) for p in serial.points
    ], "batched matrix diverged from the serial oracle"
    violations = serial.violations()
    assert not violations, "\n".join(violations)

    speedup = serial_wall / batched_wall
    runs = {
        "serial": bench_run_record(
            workers=0, wall_s=serial_wall, census=census,
            engine="serial", batch_width=1, batch_width_source="serial",
        ),
        "batched": bench_run_record(
            workers=0, wall_s=batched_wall,
            sim={"engines_created": 0, "events_executed": events},
            engine="batched", batch_width_source="auto",
        ),
    }
    runs["batched"]["speedup_vs_serial"] = round(speedup, 3)

    report(
        "faults_matrix",
        f"Faults matrix (contention-sweep, {N_BITS} bits x {N_SEEDS} seeds): "
        "serial oracle vs lockstep batch tier (aggregates identical)",
        serial.table(),
        footer=f"batched speedup {speedup:.2f}x\n" + census.footer(),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    doc = {
        "name": "faults_matrix",
        "channel": "contention-sweep",
        "matrix": serial.as_dict(),
        "runs": runs,
    }
    (RESULTS_DIR / "BENCH_faults_matrix.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    append_ledger_record("faults_matrix", "bench", runs["batched"])
