"""Model-guided pre-screening: the analytical tier plans a DES sweep.

Two sweeps over the same contention-trial grid (48 operating points x 2
seeds): an exhaustive DES sweep, and a model-guided one where
:mod:`repro.model.prescreen` keeps the DES only for the predicted Pareto
frontier, its margin band, audit probes, and anything the closed forms
do not support.  Three acceptance floors ride in the committed
``BENCH_model_prescreen.json`` (re-checked by
``check_bench_regression.py``):

* the guided sweep reproduces the exhaustive sweep's *measured* Pareto
  frontier — the model may only skip points the DES would have rejected;
* it simulates at most ``MAX_TRIAL_FRACTION`` of the exhaustive trials;
* it finishes at least ``ACCEPTANCE_SPEEDUP`` x faster in wall time.

The artifact also commits every operating point as a channel entry with
the model's ``predicted_*`` scalars merged next to any DES measurement
and a per-point ``source`` tag, so the drift checker and the ledger both
see where each number came from.
"""

import json
import time

from conftest import RESULTS_DIR, append_ledger_record, report

from repro.analysis.contention_sweep import contention_run
from repro.analysis.render import format_table
from repro.analysis.sweep import SOURCE_DES, grid, run_sweep
from repro.model import PrescreenBudget, pareto_frontier, predict_point
from repro.obs.telemetry import bench_run_record

ACCEPTANCE_SPEEDUP = 5.0
MAX_TRIAL_FRACTION = 0.20
SEEDS = (1, 2)
SWEEP_AXES = dict(
    slot_ns=(500.0, 600.0, 700.0, 800.0, 900.0, 1000.0, 1200.0, 1400.0,
             1600.0, 1800.0, 2100.0, 2400.0, 2700.0, 3000.0, 3300.0, 3600.0),
    n_workgroups=(2, 4, 8),
    n_slots=(16,),
)
BUDGET = PrescreenBudget(
    bandwidth_margin=0.10, error_margin_points=2.0, random_probes=2,
    probe_seed=0,
)


def _predict(params):
    return predict_point("contention_trial", params)


def _channel_key(params):
    return f"wg{params['n_workgroups']}:slot{int(params['slot_ns'])}"


def _measured_frontier(result):
    """Pareto frontier over the *simulated* (bandwidth, error) pairs."""
    values = [
        (round(p.aggregate.bandwidth_kbps, 6),
         round(p.aggregate.error_percent, 6))
        for p in result.points
        if p.alive and p.source == SOURCE_DES
    ]
    return pareto_frontier(values)


def _simulated_trials(result):
    """Trials that actually reached the DES (model answers excluded)."""
    return sum(1 for o in result.report.outcomes if o.kind != "model")


def test_model_prescreen(benchmark):
    points = grid(**SWEEP_AXES)

    def run():
        t0 = time.perf_counter()
        exhaustive = run_sweep(contention_run, points, seeds=SEEDS)
        t_exhaustive = time.perf_counter() - t0
        t0 = time.perf_counter()
        guided = run_sweep(
            contention_run, points, seeds=SEEDS,
            predict=_predict, budget=BUDGET,
        )
        t_guided = time.perf_counter() - t0
        return exhaustive, t_exhaustive, guided, t_guided

    exhaustive, t_exhaustive, guided, t_guided = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    frontier_exhaustive = _measured_frontier(exhaustive)
    frontier_guided = _measured_frontier(guided)
    frontier_match = frontier_exhaustive == frontier_guided
    trials_exhaustive = _simulated_trials(exhaustive)
    trials_guided = _simulated_trials(guided)
    fraction = trials_guided / trials_exhaustive
    speedup = t_exhaustive / t_guided
    n_des = sum(1 for p in guided.points if p.source == SOURCE_DES)

    # Simulated points must be bit-identical to the exhaustive sweep:
    # pre-screening decides *whether* the DES runs, never changes *what*
    # it computes.
    by_key = {_channel_key(p.params): p for p in exhaustive.points}
    for point in guided.points:
        if point.source != SOURCE_DES:
            continue
        twin = by_key[_channel_key(point.params)]
        assert point.aggregate.as_dict() == twin.aggregate.as_dict(), (
            f"guided DES point {point.params} diverged from exhaustive"
        )

    # The committed channels: DES measurements where simulated, model
    # predictions everywhere, per-entry source tag via bench_run_record.
    channels = {
        _channel_key(p.params): p.aggregate.as_dict()
        for p in guided.points
        if p.alive and p.source == SOURCE_DES
    }
    predictions = {
        _channel_key(p.params): p.predicted
        for p in guided.points
        if p.predicted is not None
    }
    run_record = bench_run_record(
        workers=0,
        wall_s=t_guided,
        channels=channels,
        predictions=predictions,
    )
    run_record["sources"] = {
        "des": n_des, "model": len(points) - n_des,
    }

    table = format_table(guided.header(), guided.rows())
    summary = (
        f"exhaustive: {trials_exhaustive} trials in {t_exhaustive:.2f}s; "
        f"guided: {trials_guided} trials ({100 * fraction:.0f}%) in "
        f"{t_guided:.2f}s = {speedup:.1f}x\n"
        f"measured frontier "
        f"{'reproduced' if frontier_match else 'MISSED'}: "
        + ", ".join(f"{bw:.0f} kb/s @ {err:.2f}%"
                    for bw, err in frontier_exhaustive)
    )
    report(
        "model_prescreen",
        f"Model-guided pre-screened contention sweep "
        f"({len(points)} points x {len(SEEDS)} seeds)",
        table,
        footer=summary,
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    doc = {
        "name": "model_prescreen",
        "run": run_record,
        "prescreen": {
            "acceptance_floor_speedup": ACCEPTANCE_SPEEDUP,
            "max_trial_fraction": MAX_TRIAL_FRACTION,
            "exhaustive": {
                "trials": trials_exhaustive,
                "wall_s": round(t_exhaustive, 4),
            },
            "guided": {
                "trials": trials_guided,
                "wall_s": round(t_guided, 4),
            },
            "speedup": round(speedup, 3),
            "trial_fraction": round(fraction, 4),
            "frontier_match": frontier_match,
            "frontier": [list(v) for v in frontier_exhaustive],
            "budget": {
                "bandwidth_margin": BUDGET.bandwidth_margin,
                "error_margin_points": BUDGET.error_margin_points,
                "random_probes": BUDGET.random_probes,
                "probe_seed": BUDGET.probe_seed,
            },
        },
    }
    path = RESULTS_DIR / "BENCH_model_prescreen.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    append_ledger_record(
        "model_prescreen",
        "bench",
        {
            "wall_s": round(t_guided, 4),
            "speedup_vs_exhaustive": round(speedup, 3),
            "trial_fraction": round(fraction, 4),
            "frontier_match": frontier_match,
            "channels": run_record.get("channels"),
        },
        predictions={"sources": run_record["sources"]},
    )

    assert frontier_match, (
        f"guided sweep missed the measured frontier: "
        f"{frontier_guided} != {frontier_exhaustive}"
    )
    assert fraction <= MAX_TRIAL_FRACTION, (
        f"guided sweep simulated {trials_guided}/{trials_exhaustive} trials "
        f"({100 * fraction:.0f}%, cap {100 * MAX_TRIAL_FRACTION:.0f}%)"
    )
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"pre-screening bought only {speedup:.2f}x "
        f"(acceptance floor {ACCEPTANCE_SPEEDUP}x)"
    )
