"""Fig. 4 — custom SLM-counter timer characterization.

Paper: the timer separates system-memory, LLC and L3 access times; 224
counter threads were needed (one extra wavefront was too coarse, §III-B).
"""

from repro.analysis.figures import fig4_timer_characterization
from repro.analysis.render import format_table


def test_fig04_timer_characterization(benchmark, figure_report, bench_workers):
    data = benchmark.pedantic(
        fig4_timer_characterization,
        kwargs={"samples": 24, "thread_counts": (32, 96, 224),
                "workers": bench_workers},
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["counter threads", "level", "mean ticks", "stdev"], data.rows()
    )
    separation = "\n".join(
        f"counter_threads={char.counter_threads}: separated={char.levels_separated}"
        for char in [data.main] + data.sweep
    )
    figure_report(
        "fig04",
        "Fig. 4: timer ticks per hierarchy level "
        "(paper: three clearly separated bands)",
        table + "\n" + separation,
        channels={
            f"timer{char.counter_threads}": {
                "memory_mean_ticks": round(char.memory.mean, 2),
                "levels_separated": int(char.levels_separated),
            }
            for char in [data.main] + data.sweep
        },
    )
    assert data.main.levels_separated
    # Full work-group timer resolves far better than a single wavefront.
    full = data.sweep[-1]
    single_wavefront = data.sweep[0]
    assert full.memory.mean > 2 * single_wavefront.memory.mean
