"""§III-E ablation — GPU thread parallelism bridges the clock disparity.

The paper: "While the CPU primes/probes the LLC cache lines in a set
serially, the slower GPU can match the cache access rate by operating in
parallel."  Restricting the GPU's memory parallelism to one outstanding
request reverts it to a 4x-slower serial device and the channel's
bandwidth collapses.
"""

import dataclasses

from repro.analysis.render import format_table
from repro.config import kaby_lake_model
from repro.core.llc_channel import LLCChannel, LLCChannelConfig
from repro.errors import ChannelProtocolError


def test_parallel_probe_ablation(benchmark, figure_report):
    def run_both():
        parallel = LLCChannel(LLCChannelConfig()).transmit(n_bits=48, seed=3)
        serial_config = kaby_lake_model(scale=16)
        serial_config = serial_config.replace(
            gpu=dataclasses.replace(serial_config.gpu, mem_parallelism=1)
        )
        try:
            serial = LLCChannel(
                LLCChannelConfig(), soc_config=serial_config
            ).transmit(n_bits=48, seed=3)
            serial_row = (
                "serial GPU (1 outstanding)",
                round(serial.bandwidth_kbps, 1),
                round(serial.error_percent, 1),
            )
            serial_bw = serial.bandwidth_kbps
        except ChannelProtocolError:
            serial_row = ("serial GPU (1 outstanding)", 0.0, "dead")
            serial_bw = 0.0
        return parallel, serial_row, serial_bw

    parallel, serial_row, serial_bw = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    table = format_table(
        ["GPU probe mode", "kb/s", "err %"],
        [
            (
                "16-way parallel (paper)",
                round(parallel.bandwidth_kbps, 1),
                round(parallel.error_percent, 1),
            ),
            serial_row,
        ],
    )
    figure_report(
        "ablation_parallel",
        "§III-E ablation: GPU probe parallelism vs the 4x clock disparity",
        table,
    )
    assert parallel.bandwidth_kbps > 1.5 * serial_bw
