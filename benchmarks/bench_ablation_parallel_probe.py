"""§III-E ablation — GPU thread parallelism bridges the clock disparity.

The paper: "While the CPU primes/probes the LLC cache lines in a set
serially, the slower GPU can match the cache access rate by operating in
parallel."  Restricting the GPU's memory parallelism to one outstanding
request reverts it to a 4x-slower serial device and the channel's
bandwidth collapses.

Both arms run as independent executor trials (module-level trial fn, so
``REPRO_BENCH_WORKERS>0`` fans them across worker processes).
"""

import dataclasses
import typing

from repro.analysis.render import format_table
from repro.config import kaby_lake_model
from repro.core.llc_channel import LLCChannel, LLCChannelConfig
from repro.exec import DEAD, TrialExecutor, TrialSpec


def _probe_trial(params: typing.Dict[str, object], seed: int):
    soc_config = kaby_lake_model(scale=16)
    mem_parallelism = params.get("mem_parallelism")
    if mem_parallelism is not None:
        soc_config = soc_config.replace(
            gpu=dataclasses.replace(
                soc_config.gpu, mem_parallelism=typing.cast(int, mem_parallelism)
            )
        )
    return LLCChannel(LLCChannelConfig(), soc_config=soc_config).transmit(
        n_bits=typing.cast(int, params["n_bits"]), seed=seed
    )


def test_parallel_probe_ablation(benchmark, figure_report, bench_workers):
    def run_both():
        executor = TrialExecutor(workers=bench_workers)
        report = executor.run(
            [
                TrialSpec(fn=_probe_trial, params={"n_bits": 48}, seed=3),
                TrialSpec(
                    fn=_probe_trial,
                    params={"n_bits": 48, "mem_parallelism": 1},
                    seed=3,
                ),
            ]
        )
        parallel_outcome, serial_outcome = report.outcomes
        assert parallel_outcome.ok, parallel_outcome.error
        if serial_outcome.ok:
            serial = serial_outcome.result
            serial_row = (
                "serial GPU (1 outstanding)",
                round(serial.bandwidth_kbps, 1),
                round(serial.error_percent, 1),
            )
            serial_bw = serial.bandwidth_kbps
        else:
            assert serial_outcome.kind == DEAD, serial_outcome.error
            serial_row = ("serial GPU (1 outstanding)", 0.0, "dead")
            serial_bw = 0.0
        return parallel_outcome.result, serial_row, serial_bw

    parallel, serial_row, serial_bw = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    table = format_table(
        ["GPU probe mode", "kb/s", "err %"],
        [
            (
                "16-way parallel (paper)",
                round(parallel.bandwidth_kbps, 1),
                round(parallel.error_percent, 1),
            ),
            serial_row,
        ],
    )
    figure_report(
        "ablation_parallel",
        "§III-E ablation: GPU probe parallelism vs the 4x clock disparity",
        table,
        channels={
            "parallel_probe": {
                "bandwidth_kbps": round(parallel.bandwidth_kbps, 4),
                "error_percent": round(parallel.error_percent, 4),
            },
            "serial_probe": {
                "bandwidth_kbps": round(float(serial_bw), 4),
            },
        },
    )
    assert parallel.bandwidth_kbps > 1.5 * serial_bw
