"""Checkpoint forking — cold sweep vs warm prefix-forked sweep.

The slot-length sweep (:mod:`repro.analysis.checkpoint_sweep`) is the
checkpoint subsystem's headline workload: every operating point shares
one prepared machine and one joint calibration measurement.  This bench
runs the sweep twice — once with checkpointing forced off (every point
cold-starts and re-measures) and once forced on (every point forks the
shared prefix) — asserts the rows are bit-identical, and records the
wall-time ratio as ``speedup_vs_cold`` in ``BENCH_checkpoint_fork.json``.
"""

import time

from conftest import (
    BENCH_WORKERS,
    append_ledger_record,
    record_bench_json,
    report,
)

from repro import checkpoint
from repro.analysis.checkpoint_sweep import slot_length_sweep
from repro.analysis.render import format_table
from repro.exec import TrialExecutor
from repro.obs import EngineCensus, bench_run_record


def test_checkpoint_fork_speedup(benchmark):
    def run():
        with EngineCensus() as census:
            t0 = time.perf_counter()
            with checkpoint.forced(False):
                cold = slot_length_sweep(
                    seed=1, executor=TrialExecutor(workers=BENCH_WORKERS)
                )
            t_cold = time.perf_counter() - t0
            warm_executor = TrialExecutor(workers=BENCH_WORKERS)
            t1 = time.perf_counter()
            with checkpoint.forced(True):
                warm = slot_length_sweep(seed=1, executor=warm_executor)
            t_warm = time.perf_counter() - t1
        return cold, warm, t_cold, t_warm, warm_executor, census

    cold, warm, t_cold, t_warm, warm_executor, census = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # The whole point: forking is a scheduling decision, not a result
    # change.  Cold and warm sweeps must agree bit for bit.
    assert cold.rows() == warm.rows()

    speedup = t_cold / t_warm
    table = format_table(
        ["slot us", "iteration factor", "kbps", "error %"],
        warm.rows(),
    )
    stats_lines = [
        f"cold: {t_cold:.3f}s   warm-forked: {t_warm:.3f}s   "
        f"speedup: {speedup:.2f}x",
        warm.report.cache.summary() if warm.report else "cache: disabled",
    ]
    store = warm_executor._checkpoints
    if store is not None:
        stats_lines.append(store.stats.summary())
    report(
        "checkpoint_fork",
        "Checkpoint forking: slot-length sweep, cold vs warm-forked "
        "(rows bit-identical)",
        table,
        footer="\n".join(stats_lines) + "\n" + census.footer(),
    )
    run = bench_run_record(
        workers=BENCH_WORKERS,
        wall_s=t_warm,
        census=census,
        cache=warm.report.cache if warm.report else {},
        checkpoints=store.stats if store is not None else {},
        extra={
            "cold_wall_s": round(t_cold, 4),
            "speedup_vs_cold": round(speedup, 3),
            "events_per_sec": round(
                census.events_executed / (t_cold + t_warm), 1
            ),
        },
    )
    record_bench_json("checkpoint_fork", run)
    append_ledger_record("checkpoint_fork", "bench", run)
    assert speedup >= 2.0, (
        f"prefix forking bought only {speedup:.2f}x over cold starts"
    )
