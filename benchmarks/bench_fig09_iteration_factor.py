"""Fig. 9 — optimal iteration factor vs GPU buffer size.

Paper: with the CPU buffer fixed at 512 KB, the calibrated iteration
factor falls as the GPU buffer grows (the two sides' execution times are
matched).  The ablation block shows what the calibration buys: forcing
whole-pass slots on a large buffer tanks the bandwidth.
"""

from repro.analysis.figures import fig9_iteration_factor
from repro.analysis.render import format_table
from repro.core.contention_channel import (
    ContentionChannel,
    ContentionChannelConfig,
)

KB, MB = 1024, 1024 * 1024


def test_fig09_iteration_factor(benchmark, figure_report, bench_workers):
    data = benchmark.pedantic(
        fig9_iteration_factor,
        kwargs={"gpu_buffer_sizes": (256 * KB, 512 * KB, 1 * MB, 2 * MB),
                "workers": bench_workers},
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["gpu buffer (paper)", "iteration factor", "pass us", "slot us"],
        data.rows(),
    )
    figure_report(
        "fig09",
        "Fig. 9: iteration factor vs GPU buffer size "
        "(paper: factor falls as the buffer grows)",
        table,
        channels={
            f"gpu{p.gpu_buffer_paper_bytes // KB}KB": {
                "iteration_factor": p.iteration_factor,
                "slot_us": round(p.slot_us, 4),
            }
            for p in data.points
        },
    )
    factors = [p.iteration_factor for p in data.points]
    assert factors == sorted(factors, reverse=True)


def test_fig09_ablation_uncalibrated_slots(benchmark, figure_report):
    """Without the I_F calibration the slot is tied to whole passes."""

    def run():
        calibrated = ContentionChannel(ContentionChannelConfig())
        forced = ContentionChannel(ContentionChannelConfig(iteration_factor=4))
        cal_a = calibrated.calibrate(seed=1)
        cal_b = forced.calibrate(seed=1)
        return (
            calibrated.transmit(n_bits=48, seed=2, calibration=cal_a),
            forced.transmit(n_bits=48, seed=2, calibration=cal_b),
        )

    result_a, result_b = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report(
        "fig09_ablation",
        "Fig. 9 ablation: calibrated vs forced iteration factor",
        f"calibrated: {result_a.summary()}\nforced I_F=4: {result_b.summary()}",
        channels={
            "calibrated": {
                "bandwidth_kbps": round(result_a.bandwidth_kbps, 4),
                "error_percent": round(result_a.error_percent, 4),
            },
            "forced_if4": {
                "bandwidth_kbps": round(result_b.bandwidth_kbps, 4),
                "error_percent": round(result_b.error_percent, 4),
            },
        },
    )
    assert result_a.bandwidth_kbps > 2 * result_b.bandwidth_kbps
