"""Fig. 7 — LLC channel bandwidth under the three L3-eviction strategies.

Paper (GPU→CPU / CPU→GPU): full-L3-clear ≈ 1 kb/s; LLC-knowledge-only 70 /
67 kb/s; precise L3 eviction sets 120 / 118 kb/s (error 2% / 6%).
"""

from repro.analysis.figures import fig7_llc_strategies
from repro.analysis.render import format_table
from repro.core.llc_channel import EvictionStrategy


def test_fig07_llc_strategies(benchmark, figure_report, bench_workers):
    data = benchmark.pedantic(
        fig7_llc_strategies,
        kwargs={"n_bits": 64, "seeds": (1, 2), "workers": bench_workers},
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["strategy", "direction", "kb/s", "err %"], data.rows()
    )
    paper = "\n".join(f"paper {k}: {v}" for k, v in data.paper.items())
    figure_report(
        "fig07",
        "Fig. 7: bandwidth by L3 eviction strategy",
        table + "\n" + paper,
        channels={
            f"{p.strategy.value}:{p.direction.value}": p.aggregate.as_dict()
            for p in data.points
        },
    )

    by_strategy = {}
    for point in data.points:
        by_strategy.setdefault(point.strategy, []).append(
            point.aggregate.bandwidth_kbps
        )
    mean = {s: sum(v) / len(v) for s, v in by_strategy.items()}
    # The paper's ordering must hold, with a large gap to the naive clear.
    assert (
        mean[EvictionStrategy.PRECISE_L3]
        > mean[EvictionStrategy.LLC_ONLY]
        > mean[EvictionStrategy.FULL_L3_CLEAR]
    )
    assert mean[EvictionStrategy.PRECISE_L3] > 8 * mean[EvictionStrategy.FULL_L3_CLEAR]
