"""Fig. 8 — error and bandwidth vs number of redundant LLC sets.

Paper: 1 set → 7% (GPU→CPU) / 9% (CPU→GPU) error; 2 sets → 2% / 6%;
beyond 2 sets error stays flat while bandwidth keeps decaying
(128→120 kb/s and 125→118 kb/s going from 1 to 2 sets).
"""

from repro.analysis.figures import fig8_llc_sets
from repro.analysis.render import format_table
from repro.core.channel import ChannelDirection


def test_fig08_llc_sets(benchmark, figure_report, bench_workers):
    data = benchmark.pedantic(
        fig8_llc_sets,
        kwargs={"set_counts": (1, 2, 4), "n_bits": 96, "seeds": (1, 2, 3),
                "workers": bench_workers},
        rounds=1,
        iterations=1,
    )
    table = format_table(["sets", "direction", "kb/s", "err %"], data.rows())
    paper = "\n".join(f"paper {k}: {v}" for k, v in data.paper.items())
    figure_report(
        "fig08",
        "Fig. 8: error and bandwidth vs LLC sets",
        table + "\n" + paper,
        channels={
            f"sets{p.n_sets}:{p.direction.value}": p.aggregate.as_dict()
            for p in data.points
        },
    )

    def err(n_sets, direction):
        for point in data.points:
            if point.n_sets == n_sets and point.direction == direction:
                return point.aggregate.error_percent
        return None

    g2c_1, g2c_2 = err(1, ChannelDirection.GPU_TO_CPU), err(2, ChannelDirection.GPU_TO_CPU)
    assert g2c_1 is not None and g2c_2 is not None
    # Redundancy reduces the GPU→CPU error (7% → 2% in the paper).
    assert g2c_2 <= g2c_1
    # Error at 4 sets does not keep improving dramatically (flat tail).
    g2c_4 = err(4, ChannelDirection.GPU_TO_CPU)
    if g2c_4 is not None:
        assert g2c_4 <= g2c_1
