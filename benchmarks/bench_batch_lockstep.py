"""Lockstep batching — serial oracle vs vectorized multi-trial engine.

One 256-trial probe sweep (32 slots each) runs once through the serial
engine (``REPRO_BATCH=0`` semantics, the bit-exact oracle) and once per
lane width through the lockstep batch tier.  The outcomes must agree
bit for bit at every width — the speedup is a scheduling decision, not
a result change — and the wall-time ratio is the headline number.

Events/sec is reported as *aggregate* throughput: the serial engine's
true event count (from an :class:`~repro.obs.EngineCensus`) divided by
each configuration's wall time.  The batched kernel executes strictly
fewer bookkeeping events for the same simulated work, so charging both
sides with the serial census keeps the columns comparable — the ratio
is exactly the wall-time ratio.

``BENCH_batch.json`` records one run row per width, tagged with the
``engine``/``batch_width`` fields (satellite of the run-ledger schema),
plus ``speedup_vs_serial`` on each batched row.  The committed artifact
is the drift baseline ``check_bench_regression.py`` guards: the widest
row must stay at or above the 10x acceptance floor.
"""

import json
import os
import time

from conftest import (
    BENCH_WORKERS,
    RESULTS_DIR,
    append_ledger_record,
    report,
)

from repro.analysis import probe_sweep
from repro.analysis.render import format_table
from repro.exec import TrialExecutor, TrialSpec
from repro.obs import EngineCensus
from repro.obs.telemetry import bench_run_record
from repro.sim.batch import gate as batch_gate

N_TRIALS = 256
N_SLOTS = 32
WIDTHS = (4, 16, 64, 256)
ACCEPTANCE_SPEEDUP = 10.0


def _specs():
    return [
        TrialSpec(fn=probe_sweep.probe_trial, params={"n_slots": N_SLOTS}, seed=s)
        for s in range(N_TRIALS)
    ]


def _run(batch: bool, width=None):
    env_key = "REPRO_BATCH_WIDTH"
    previous = os.environ.get(env_key)
    if width is not None:
        os.environ[env_key] = str(width)
    try:
        with batch_gate.forced(batch):
            with EngineCensus() as census:
                t0 = time.perf_counter()
                outcomes = TrialExecutor(workers=BENCH_WORKERS).run(_specs()).outcomes
                wall = time.perf_counter() - t0
    finally:
        if previous is None:
            os.environ.pop(env_key, None)
        else:
            os.environ[env_key] = previous
    return [(o.index, o.kind, o.result) for o in outcomes], wall, census


def test_batch_lockstep_speedup(benchmark):
    def run():
        serial = _run(batch=False)
        batched = {w: _run(batch=True, width=w) for w in WIDTHS}
        return serial, batched

    (serial_out, serial_wall, census), batched = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    events = census.events_executed

    # The contract before the speedup: every width reproduces the serial
    # oracle bit for bit.
    for width, (out, _wall, _census) in batched.items():
        assert out == serial_out, f"width {width} diverged from the oracle"

    rows = [["1 (serial)", f"{serial_wall:.3f}", f"{events / serial_wall:,.0f}", "1.00"]]
    runs = {
        "serial": bench_run_record(
            workers=BENCH_WORKERS,
            wall_s=serial_wall,
            census=census,
            engine="serial",
            batch_width=1,
            batch_width_source="serial",
        )
    }
    for width, (_out, wall, _census) in sorted(batched.items()):
        speedup = serial_wall / wall
        rows.append([str(width), f"{wall:.3f}", f"{events / wall:,.0f}", f"{speedup:.2f}"])
        record = bench_run_record(
            workers=BENCH_WORKERS,
            wall_s=wall,
            sim={"engines_created": 0, "events_executed": events},
            engine="batched",
            batch_width=width,
            batch_width_source="env",
        )
        record["speedup_vs_serial"] = round(speedup, 3)
        runs[f"batched_w{width}"] = record

    table = format_table(["lane width", "wall s", "agg events/s", "speedup"], rows)
    best_width = max(batched, key=lambda w: serial_wall / batched[w][1])
    best_speedup = serial_wall / batched[best_width][1]
    report(
        "batch_lockstep",
        f"Lockstep batching: {N_TRIALS}-trial sweep ({N_SLOTS} slots), "
        "serial oracle vs vectorized lanes (outcomes bit-identical)",
        table,
        footer=f"best: width {best_width} at {best_speedup:.2f}x\n"
        + census.footer(),
    )

    doc = {
        "trials": N_TRIALS,
        "n_slots": N_SLOTS,
        "events_executed": events,
        "events_per_sec": runs[f"batched_w{best_width}"]["events_per_sec"],
        "acceptance_floor_speedup": ACCEPTANCE_SPEEDUP,
        "runs": runs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_batch.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    append_ledger_record("batch_lockstep", "bench", runs[f"batched_w{best_width}"])

    assert best_speedup >= ACCEPTANCE_SPEEDUP, (
        f"lockstep batching bought only {best_speedup:.2f}x over the serial "
        f"oracle (acceptance floor {ACCEPTANCE_SPEEDUP}x)"
    )
