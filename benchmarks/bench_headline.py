"""§V headline numbers: both channels at their default operating points.

Paper: LLC PRIME+PROBE 120 kb/s @ 2% error; ring contention 400 kb/s @
0.8% error.
"""

from repro.analysis.figures import headline
from repro.analysis.render import format_table


def test_headline_numbers(benchmark, figure_report, bench_workers):
    data = benchmark.pedantic(
        headline,
        kwargs={"n_bits": 96, "seeds": (1, 2, 3), "workers": bench_workers},
        rounds=1, iterations=1,
    )
    table = format_table(
        ["channel", "measured kb/s", "measured err %", "paper"],
        [
            row + (data.paper["llc" if "llc" in row[0] else "contention"],)
            for row in data.rows()
        ],
    )
    figure_report(
        "headline",
        "§V headline: channel bandwidth and error",
        table,
        channels={
            "llc": data.llc.as_dict(),
            "contention": data.contention.as_dict(),
        },
    )
    assert data.llc.bandwidth_kbps > 50
    assert data.llc.error_percent < 10
    assert data.contention.bandwidth_kbps > 200
    assert data.contention.error_percent < 10
    # The contention channel is the faster of the two, as in the paper.
    assert data.contention.bandwidth_kbps > data.llc.bandwidth_kbps
