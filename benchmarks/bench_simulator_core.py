"""Micro-benchmarks of the simulation substrate itself.

These are conventional pytest-benchmark measurements (ops/sec of the DES
engine and cache models) — useful when tuning the simulator, and a cheap
regression canary for the heavy figure harnesses.
"""

from conftest import record_core_metric

from repro.config import kaby_lake
from repro.sim.engine import Engine
from repro.soc.cache import SetAssocCache
from repro.soc.machine import SoC
from repro.soc.replacement import TreePlru, TrueLru


def test_engine_event_throughput(benchmark):
    def run():
        engine = Engine()

        def ticker():
            for _ in range(2000):
                yield 10

        engine.process(ticker())
        engine.run()
        return engine.events_executed

    events = benchmark(run)
    assert events >= 2000
    # stats is None under --benchmark-disable (e.g. plain test runs).
    stats = getattr(benchmark, "stats", None)
    if stats is not None and stats.stats.mean > 0:
        record_core_metric(
            "simulator_core", "engine_events_per_sec", events / stats.stats.mean
        )


def test_lru_cache_access_throughput(benchmark):
    cache = SetAssocCache("bench", 256, 16, 64, TrueLru(16))
    addresses = [(i * 2654435761) % (1 << 26) for i in range(4096)]

    def run():
        for paddr in addresses:
            cache.access(paddr)
        return cache.hits + cache.misses

    assert benchmark(run) > 0


def test_plru_cache_access_throughput(benchmark):
    cache = SetAssocCache("bench-plru", 256, 8, 64, TreePlru(8))
    addresses = [(i * 2246822519) % (1 << 24) for i in range(4096)]

    def run():
        for paddr in addresses:
            cache.access(paddr)
        return cache.hits + cache.misses

    assert benchmark(run) > 0


def test_slice_hash_throughput(benchmark):
    soc = SoC(kaby_lake())
    addresses = [(i * 40503) << 6 for i in range(8192)]

    def run():
        return sum(soc.llc.hash.slice_of(paddr) for paddr in addresses)

    assert benchmark(run) >= 0


def test_cpu_access_path_throughput(benchmark):
    """Timed end-to-end accesses through the full SoC wiring."""
    soc = SoC(kaby_lake())
    lines = soc.new_process("bench").mmap(64 * 512).line_paddrs(64)

    def run():
        def body():
            for paddr in lines:
                yield from soc.cpu_access(0, paddr)
            return soc.now_fs

        return soc.engine.run_until_complete(soc.engine.process(body()))

    assert benchmark(run) > 0
