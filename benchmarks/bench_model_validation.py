"""Analytical-tier validation: closed-form predictions vs DES figures.

Re-derives every committed channel of figs. 4 and 7-10 from config alone
through :mod:`repro.model` and records the per-figure prediction-error
report as ``BENCH_model_validation.json`` — the artifact
``check_bench_regression.py`` and the CI model-validation leg enforce.
Each figure embeds its own error ceilings, so a model or DES change that
drifts the two tiers apart fails here before it can mislead a
pre-screened sweep.

Also measures the tier's headline cost claim: a closed-form prediction
must stay microsecond-scale (the DES needs seconds per point).
"""

import json
import statistics
import time

from conftest import RESULTS_DIR, append_ledger_record, report

from repro.analysis.render import format_table
from repro.model import predict_point, validate_figures

#: Mean closed-form prediction cost ceiling; the DES takes ~1e6x this.
PREDICTION_US_CEILING = 2000.0

#: One representative operating point per model family for the timing
#: probe (params mirror the figure channels).
TIMING_POINTS = (
    ("timer", {"counter_threads": 224}),
    ("llc_channel", {"strategy": "precise-l3", "direction": "gpu-to-cpu"}),
    ("iteration_factor", {"gpu_buffer_bytes": 512 * 1024}),
    ("contention_channel", {"gpu_buffer_bytes": 2 * 1024 * 1024,
                            "n_workgroups": 2}),
    ("contention_trial", {"n_workgroups": 2, "slot_ns": 700}),
)


def _prediction_us() -> float:
    """Mean wall microseconds of one closed-form prediction."""
    samples = []
    for family, params in TIMING_POINTS:
        t0 = time.perf_counter()
        predict_point(family, dict(params))
        samples.append(1e6 * (time.perf_counter() - t0))
    return statistics.mean(samples)


def test_model_validation(benchmark):
    doc = benchmark.pedantic(
        validate_figures,
        kwargs={"results_dir": str(RESULTS_DIR)},
        rounds=1,
        iterations=1,
    )
    _prediction_us()  # warm the imports before timing
    prediction_us = _prediction_us()
    doc["prediction_us_mean"] = round(prediction_us, 2)
    doc["prediction_us_ceiling"] = PREDICTION_US_CEILING

    rows = []
    for figure, rep in sorted(doc["figures"].items()):
        errors = ", ".join(
            f"{key.removeprefix('max_')}={value:g}"
            for key, value in sorted(rep.items())
            if key.startswith("max_")
        )
        ceilings = json.dumps(rep["ceilings"], sort_keys=True)
        rows.append([
            figure,
            rep["family"],
            str(len(rep["channels"])),
            errors,
            ceilings,
            "pass" if rep["pass"] else "FAIL",
        ])
    table = format_table(
        ["figure", "family", "chans", "max error", "ceilings", "verdict"],
        rows,
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_model_validation.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    report(
        "model_validation",
        "Analytical tier vs committed DES figures "
        "(bandwidth relative, BER absolute points)",
        table,
        footer=f"prediction cost: {prediction_us:.0f} us/point mean "
        f"(ceiling {PREDICTION_US_CEILING:.0f} us)",
    )
    append_ledger_record(
        "model_validation",
        "model",
        {"prediction_us_mean": round(prediction_us, 2),
         "figures_pass": doc["pass"]},
        predictions={
            figure: {"pass": rep["pass"], "ceilings": rep["ceilings"]}
            for figure, rep in doc["figures"].items()
        },
    )

    assert doc["pass"], "a figure exceeded its prediction-error ceiling"
    assert prediction_us <= PREDICTION_US_CEILING, (
        f"closed-form prediction took {prediction_us:.0f} us on average "
        f"(ceiling {PREDICTION_US_CEILING:.0f} us)"
    )
