"""§III-C/D reverse engineering as benchmarks: recovery + cost.

Paper: Eq. (1)/(2) slice hash recovered with huge pages and timing; the
GPU L3 is non-inclusive; its placement uses the low 16 address bits with
pLRU replacement needing repeated sweeps for stable eviction.

The recovery procedures run as executor trials so the harness exercises
the same dispatch path as the figure sweeps (and fans across workers
under ``REPRO_BENCH_WORKERS>0``).
"""

import typing

from repro.analysis.render import format_table
from repro.config import SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK, kaby_lake
from repro.core.reverse_engineering import (
    check_l3_inclusiveness,
    discover_l3_geometry,
    recover_slice_hash,
)
from repro.exec import TrialExecutor, TrialSpec
from repro.soc.slice_hash import SliceHash


def _slice_hash_trial(params: typing.Dict[str, object], seed: int):
    return recover_slice_hash(
        seed=seed,
        pool_size=typing.cast(int, params["pool_size"]),
        verify_offsets=typing.cast(int, params["verify_offsets"]),
    )


def _l3_geometry_trial(params: typing.Dict[str, object], seed: int):
    return discover_l3_geometry(seed=seed)


def _inclusiveness_trial(params: typing.Dict[str, object], seed: int):
    return check_l3_inclusiveness(
        n_lines=typing.cast(int, params["n_lines"]), seed=seed
    )


def _run_single(spec: TrialSpec, workers: int):
    report = TrialExecutor(workers=workers).run([spec])
    outcome = report.outcomes[0]
    assert outcome.ok, outcome.error
    return outcome.result


def test_re_slice_hash(benchmark, figure_report, bench_workers):
    report = benchmark.pedantic(
        _run_single,
        args=(
            TrialSpec(
                fn=_slice_hash_trial,
                params={"pool_size": 120, "verify_offsets": 16},
                seed=1,
            ),
            bench_workers,
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["quantity", "value"],
        [
            ("slices found", report.n_slices),
            ("probed PA bits", f"{min(report.probed_bits)}..{max(report.probed_bits)}"),
            ("verification accuracy", report.verification_accuracy),
            ("oracle queries", report.oracle_queries),
        ],
    )
    figure_report(
        "re_slice_hash",
        "§III-C: slice-hash recovery (paper: Eq. (1)/(2) over bits 6..37)",
        table,
        channels={
            "slice_hash": {
                "n_slices": int(report.n_slices),
                "verification_accuracy": round(
                    float(report.verification_accuracy), 4
                ),
                "oracle_queries": int(report.oracle_queries),
            }
        },
    )
    truth = SliceHash([SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK], 4)
    config = kaby_lake()
    period = config.llc.line_bytes << config.llc.set_index_bits
    offsets = [unit * period for unit in range(0, 4096, 37)]
    assert report.partition_matches(lambda o: truth.slice_of(o), offsets)
    assert report.n_slices == 4


def test_re_l3_structures(benchmark, figure_report, bench_workers):
    geometry = benchmark.pedantic(
        _run_single,
        args=(TrialSpec(fn=_l3_geometry_trial, params={}, seed=1), bench_workers),
        rounds=1,
        iterations=1,
    )
    inclusiveness = _run_single(
        TrialSpec(fn=_inclusiveness_trial, params={"n_lines": 12}, seed=1),
        bench_workers,
    )
    config = kaby_lake().gpu_l3
    table = format_table(
        ["quantity", "recovered", "configured/paper"],
        [
            ("placement bits", geometry.placement_bits, f"{config.placement_bits} (paper: 16)"),
            ("ways", geometry.ways, config.ways),
            ("stable-eviction rounds", geometry.eviction_rounds,
             f"{config.plru_rounds_for_eviction} (paper: >=5)"),
            ("LLC inclusive of L3", inclusiveness.inclusive, "False (paper: non-inclusive)"),
        ],
    )
    figure_report(
        "re_l3",
        "§III-D: GPU L3 reverse engineering",
        table,
        channels={
            "l3_geometry": {
                "placement_bits": int(geometry.placement_bits),
                "ways": int(geometry.ways),
                "eviction_rounds": int(geometry.eviction_rounds),
                "llc_inclusive": int(inclusiveness.inclusive),
            }
        },
    )
    assert geometry.placement_bits == config.placement_bits
    assert geometry.ways == config.ways
    assert inclusiveness.inclusive is False
