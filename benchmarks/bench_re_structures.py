"""§III-C/D reverse engineering as benchmarks: recovery + cost.

Paper: Eq. (1)/(2) slice hash recovered with huge pages and timing; the
GPU L3 is non-inclusive; its placement uses the low 16 address bits with
pLRU replacement needing repeated sweeps for stable eviction.
"""

from repro.analysis.render import format_table
from repro.config import SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK, kaby_lake
from repro.core.reverse_engineering import (
    check_l3_inclusiveness,
    discover_l3_geometry,
    recover_slice_hash,
)
from repro.soc.slice_hash import SliceHash


def test_re_slice_hash(benchmark, figure_report):
    report = benchmark.pedantic(
        recover_slice_hash,
        kwargs={"seed": 1, "pool_size": 120, "verify_offsets": 16},
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["quantity", "value"],
        [
            ("slices found", report.n_slices),
            ("probed PA bits", f"{min(report.probed_bits)}..{max(report.probed_bits)}"),
            ("verification accuracy", report.verification_accuracy),
            ("oracle queries", report.oracle_queries),
        ],
    )
    figure_report(
        "re_slice_hash",
        "§III-C: slice-hash recovery (paper: Eq. (1)/(2) over bits 6..37)",
        table,
    )
    truth = SliceHash([SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK], 4)
    config = kaby_lake()
    period = config.llc.line_bytes << config.llc.set_index_bits
    offsets = [unit * period for unit in range(0, 4096, 37)]
    assert report.partition_matches(lambda o: truth.slice_of(o), offsets)
    assert report.n_slices == 4


def test_re_l3_structures(benchmark, figure_report):
    geometry = benchmark.pedantic(
        discover_l3_geometry, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    inclusiveness = check_l3_inclusiveness(n_lines=12, seed=1)
    config = kaby_lake().gpu_l3
    table = format_table(
        ["quantity", "recovered", "configured/paper"],
        [
            ("placement bits", geometry.placement_bits, f"{config.placement_bits} (paper: 16)"),
            ("ways", geometry.ways, config.ways),
            ("stable-eviction rounds", geometry.eviction_rounds,
             f"{config.plru_rounds_for_eviction} (paper: >=5)"),
            ("LLC inclusive of L3", inclusiveness.inclusive, "False (paper: non-inclusive)"),
        ],
    )
    figure_report("re_l3", "§III-D: GPU L3 reverse engineering", table)
    assert geometry.placement_bits == config.placement_bits
    assert geometry.ways == config.ways
    assert inclusiveness.inclusive is False
