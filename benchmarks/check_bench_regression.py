"""Benchmark regression guard for the committed performance artifacts.

Seven families of checks, the first four against the figures committed
at HEAD (the benchmark run overwrites the working-tree files, so the
baseline has to come out of git) and the last three absolute,
self-contained in the artifacts:

* ``engine_events_per_sec`` from ``BENCH_simulator_core.json`` — the
  core scheduler throughput metric (higher is better);
* the headline wall time from ``BENCH_headline.json`` (lower is better,
  with a wider tolerance — wall clocks on shared runners are noisy);
* ``events_per_sec`` of every per-figure ``BENCH_*.json`` that records
  one (higher is better);
* channel health: per-channel BER / bandwidth in every artifact that
  records a ``channels`` block, z-score-checked against the committed
  baseline via :mod:`repro.obs.drift` — a BER rise or bandwidth drop
  beyond the committed confidence interval is a regression, not noise;
* the lockstep-batching floor from ``BENCH_batch.json`` — an *absolute*
  check, no git baseline involved: the best batched row's aggregate
  events/sec must stay at or above ``acceptance_floor_speedup`` times
  the serial row recorded in the same artifact;
* the analytical tier's prediction-error ceilings from
  ``BENCH_model_validation.json`` — absolute, self-contained: every
  figure's recorded error must pass the ceilings embedded beside it;
* the model-guided pre-screening floors from
  ``BENCH_model_prescreen.json`` — absolute: the guided sweep must
  reproduce the exhaustive measured Pareto frontier with at most
  ``max_trial_fraction`` of the trials and at least
  ``acceptance_floor_speedup`` x the wall-time.

A metric present in the working tree but absent from the committed
baseline — a brand-new benchmark, or an old artifact that predates a
field — is reported and *skipped*, not failed: first runs must be able
to establish their own baseline.

Usage (CI runs exactly this)::

    python -m pytest benchmarks/bench_simulator_core.py -q
    python benchmarks/check_bench_regression.py

Exit status 0 on pass, 1 on any regression, 2 when nothing could be
checked at all (no results, or not a git checkout and no ``--baseline``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import subprocess
import sys
import typing

RESULTS_RELDIR = "benchmarks/results"
CORE_RESULT = "BENCH_simulator_core.json"
HEADLINE_RESULT = "BENCH_headline.json"
BATCH_RESULT = "BENCH_batch.json"
CORE_METRIC = "engine_events_per_sec"
DEFAULT_TOLERANCE = 0.20
DEFAULT_WALL_TOLERANCE = 0.50


def _repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent


@dataclasses.dataclass(frozen=True)
class Check:
    """One guarded scalar: where it lives and which direction is worse."""

    name: str
    relpath: str
    extract: typing.Callable[[dict], typing.Optional[float]]
    tolerance: float
    higher_is_better: bool = True


def _metric(doc: dict, *path: str) -> typing.Optional[float]:
    """Walk nested dict keys; ``None`` (not KeyError) when any is absent."""
    node: object = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    try:
        return float(typing.cast(float, node))
    except (TypeError, ValueError):
        return None


def committed_doc(relpath: str, rev: str) -> typing.Optional[dict]:
    """The artifact as committed at ``rev``, or ``None`` if absent there."""
    try:
        blob = subprocess.check_output(
            ["git", "show", f"{rev}:{relpath}"],
            cwd=_repo_root(),
            stderr=subprocess.DEVNULL,
        )
    except (subprocess.CalledProcessError, FileNotFoundError, OSError):
        return None
    try:
        return json.loads(blob)
    except ValueError:
        return None


def build_checks(
    results_dir: pathlib.Path, tolerance: float, wall_tolerance: float
) -> typing.List[Check]:
    checks = [
        Check(
            name=f"simulator_core {CORE_METRIC}",
            relpath=f"{RESULTS_RELDIR}/{CORE_RESULT}",
            extract=lambda doc: _metric(doc, "metrics", CORE_METRIC),
            tolerance=tolerance,
        ),
        Check(
            name="headline wall_s",
            relpath=f"{RESULTS_RELDIR}/{HEADLINE_RESULT}",
            extract=lambda doc: _metric(doc, "runs", "0", "wall_s"),
            tolerance=wall_tolerance,
            higher_is_better=False,
        ),
    ]
    checks.append(
        Check(
            name="batch aggregate events_per_sec",
            relpath=f"{RESULTS_RELDIR}/{BATCH_RESULT}",
            extract=lambda doc: _metric(doc, "events_per_sec"),
            tolerance=tolerance,
        )
    )
    for path in sorted(results_dir.glob("BENCH_*.json")):
        checks.append(
            Check(
                name=f"{path.stem.removeprefix('BENCH_')} events_per_sec",
                relpath=f"{RESULTS_RELDIR}/{path.name}",
                extract=lambda doc: _metric(doc, "runs", "0", "events_per_sec"),
                tolerance=tolerance,
            )
        )
    return checks


def _floor_blocks(doc: dict) -> typing.Iterator[typing.Tuple[str, dict]]:
    """Yield every ``(label, block)`` carrying a lockstep-batching floor.

    A floor block has ``acceptance_floor_speedup`` plus a ``runs`` dict
    with a ``serial`` row; it lives either at an artifact's top level
    (``BENCH_batch.json``) or nested under ``batch`` (the fig10
    contention-sweep artifact, whose top level belongs to the figure).
    """
    for label, node in (("", doc), ("batch", doc.get("batch"))):
        if (
            isinstance(node, dict)
            and "acceptance_floor_speedup" in node
            and isinstance(node.get("runs"), dict)
        ):
            yield label, node


def run_batch_floor_checks(
    results_dir: pathlib.Path,
) -> typing.List[typing.Tuple[str, str]]:
    """Absolute lockstep-batching floors, self-contained in the artifacts.

    Each batching bench records the serial oracle and every batched
    configuration in one floor block; the best batched row must keep an
    aggregate events/sec of at least ``acceptance_floor_speedup`` times
    the serial row.  Unlike the baseline-relative checks this can never
    rot by re-committing a slower figure — the floor rides along inside
    the artifact.
    """
    results: typing.List[typing.Tuple[str, str]] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            continue
        for label, block in _floor_blocks(doc):
            name = path.stem.removeprefix("BENCH_")
            if label:
                name = f"{name}.{label}"
            floor = _metric(block, "acceptance_floor_speedup")
            runs = typing.cast(dict, block["runs"])
            serial = _metric(runs, "serial", "events_per_sec")
            batched = max(
                (
                    _metric(typing.cast(dict, run), "events_per_sec") or 0.0
                    for key, run in runs.items()
                    if isinstance(run, dict) and key != "serial"
                ),
                default=0.0,
            )
            if floor is None or serial is None or serial <= 0 or batched <= 0:
                results.append(
                    ("skip", f"{name} floor: serial or batched rows absent")
                )
                continue
            speedup = batched / serial
            status = "ok" if speedup >= floor else "regression"
            results.append((status, (
                f"{name} floor: best batched {batched:,.0f} ev/s vs serial "
                f"{serial:,.0f} ev/s = {speedup:.2f}x (floor {floor:.0f}x)"
            )))
    if not results:
        results.append(
            ("skip", "batch floor: no artifact records one; run the benchmarks")
        )
    return results


def run_model_validation_checks(
    results_dir: pathlib.Path,
) -> typing.List[typing.Tuple[str, str]]:
    """Per-figure analytical-tier prediction-error ceilings.

    ``BENCH_model_validation.json`` (written by the model-validation
    bench / ``python -m repro.model --validate``) embeds its own
    per-figure ceilings, so this check is absolute like the batch floor:
    every figure must report ``pass`` under the ceilings recorded next
    to its error numbers.
    """
    path = results_dir / "BENCH_model_validation.json"
    if not path.exists():
        return [("skip", "model validation: no report; run the benchmark")]
    try:
        doc = json.loads(path.read_text())
    except ValueError:
        return [("skip", "model validation: report is not valid JSON")]
    figures = doc.get("figures")
    if not isinstance(figures, dict) or not figures:
        return [("skip", "model validation: report has no figures block")]
    results: typing.List[typing.Tuple[str, str]] = []
    for figure in sorted(figures):
        report = figures[figure]
        if not isinstance(report, dict):
            continue
        ceilings = report.get("ceilings", {})
        errors = ", ".join(
            f"{key.removeprefix('max_')}={value:g}"
            for key, value in sorted(report.items())
            if key.startswith("max_")
        )
        status = "ok" if report.get("pass") else "regression"
        results.append((status, (
            f"model {figure}: {errors or 'no error metrics'} "
            f"(ceilings {json.dumps(ceilings, sort_keys=True)})"
        )))
    return results


def run_prescreen_floor_checks(
    results_dir: pathlib.Path,
) -> typing.List[typing.Tuple[str, str]]:
    """Absolute floors for the model-guided sweep planner.

    The pre-screening bench records an exhaustive DES sweep and a
    model-guided sweep of the same grid under a ``prescreen`` block
    (nested so the lockstep-batching floor scanner never sees it).  Three
    self-contained acceptance criteria ride in the artifact: the guided
    sweep must reach the same measured Pareto frontier, run at most
    ``max_trial_fraction`` of the exhaustive trial count, and deliver at
    least ``acceptance_floor_speedup`` x the exhaustive wall time.
    """
    path = results_dir / "BENCH_model_prescreen.json"
    if not path.exists():
        return [("skip", "prescreen floor: no artifact; run the benchmark")]
    try:
        doc = json.loads(path.read_text())
    except ValueError:
        return [("skip", "prescreen floor: artifact is not valid JSON")]
    block = doc.get("prescreen")
    if not isinstance(block, dict):
        return [("skip", "prescreen floor: artifact has no prescreen block")]

    results: typing.List[typing.Tuple[str, str]] = []
    floor = _metric(block, "acceptance_floor_speedup")
    exhaustive_wall = _metric(block, "exhaustive", "wall_s")
    guided_wall = _metric(block, "guided", "wall_s")
    if None in (floor, exhaustive_wall, guided_wall) or not guided_wall:
        results.append(("skip", "prescreen floor: wall times absent"))
    else:
        speedup = typing.cast(float, exhaustive_wall) / typing.cast(
            float, guided_wall
        )
        status = "ok" if speedup >= typing.cast(float, floor) else "regression"
        results.append((status, (
            f"prescreen floor: guided {guided_wall:.2f}s vs exhaustive "
            f"{exhaustive_wall:.2f}s = {speedup:.1f}x (floor {floor:.0f}x)"
        )))

    fraction_cap = _metric(block, "max_trial_fraction")
    exhaustive_trials = _metric(block, "exhaustive", "trials")
    guided_trials = _metric(block, "guided", "trials")
    if None in (fraction_cap, exhaustive_trials, guided_trials) or not (
        exhaustive_trials
    ):
        results.append(("skip", "prescreen trials: trial counts absent"))
    else:
        fraction = typing.cast(float, guided_trials) / typing.cast(
            float, exhaustive_trials
        )
        status = (
            "ok" if fraction <= typing.cast(float, fraction_cap)
            else "regression"
        )
        results.append((status, (
            f"prescreen trials: {guided_trials:.0f}/{exhaustive_trials:.0f} "
            f"simulated = {fraction:.2f} (cap {fraction_cap:.2f})"
        )))

    frontier_match = block.get("frontier_match")
    if frontier_match is None:
        results.append(("skip", "prescreen frontier: match flag absent"))
    else:
        status = "ok" if frontier_match else "regression"
        results.append((status, (
            "prescreen frontier: guided sweep "
            + ("reproduced" if frontier_match else "MISSED")
            + " the exhaustive measured Pareto frontier"
        )))
    return results


def run_check(
    check: Check, rev: str, override_baseline: typing.Optional[float] = None
) -> typing.Tuple[str, str]:
    """Returns ``(status, message)``; status is ok/regression/skip."""
    current_path = _repo_root() / check.relpath
    if not current_path.exists():
        return "skip", f"{check.name}: no current result; run the benchmark first"
    try:
        current = check.extract(json.loads(current_path.read_text()))
    except ValueError:
        return "skip", f"{check.name}: current artifact is not valid JSON"
    if current is None:
        return "skip", f"{check.name}: metric absent from current artifact"

    if override_baseline is not None:
        baseline: typing.Optional[float] = override_baseline
    else:
        doc = committed_doc(check.relpath, rev)
        baseline = check.extract(doc) if doc is not None else None
    if baseline is None or baseline <= 0:
        return "skip", (
            f"{check.name}: no committed baseline at {rev} "
            f"(first run); current={current:,.4g} recorded"
        )

    if check.higher_is_better:
        floor = baseline * (1.0 - check.tolerance)
        bad = current < floor
        bound = f"floor={floor:,.4g}"
    else:
        ceiling = baseline * (1.0 + check.tolerance)
        bad = current > ceiling
        bound = f"ceiling={ceiling:,.4g}"
    status = "regression" if bad else "ok"
    return status, (
        f"{check.name}: current={current:,.4g} baseline={baseline:,.4g} "
        f"{bound} ({current / baseline:.2f}x, tolerance {check.tolerance:.0%})"
    )


def _drift_module():
    """Import :mod:`repro.obs.drift`, adding ``src/`` if not on the path."""
    try:
        from repro.obs import drift
    except ImportError:
        sys.path.insert(0, str(_repo_root() / "src"))
        try:
            from repro.obs import drift
        except ImportError:
            return None
    return drift


def run_drift_checks(
    results_dir: pathlib.Path, rev: str
) -> typing.List[typing.Tuple[str, str]]:
    """Channel-health drift of every working-tree artifact vs ``rev``.

    Returns ``(status, message)`` pairs in the same ok/regression/skip
    vocabulary as :func:`run_check`.  Artifacts without a ``channels``
    block on either side are silently fine — recording channel health is
    opt-in per benchmark.
    """
    drift = _drift_module()
    if drift is None:
        return [("skip", "channel drift: repro.obs.drift not importable")]
    results: typing.List[typing.Tuple[str, str]] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        name = path.stem.removeprefix("BENCH_")
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            continue
        current = drift.channels_of(doc)
        if not current:
            continue
        baseline = drift.channels_of(
            committed_doc(f"{RESULTS_RELDIR}/{path.name}", rev)
        )
        if not baseline:
            results.append(
                ("skip", f"{name} channels: no committed baseline at {rev}")
            )
            continue
        warnings = drift.channel_drift_warnings(current, baseline)
        if warnings:
            for warning in warnings:
                results.append(("regression", f"{name} {warning}"))
        else:
            results.append(
                ("ok", f"{name} channels: {len(current)} within baseline CIs")
            )
    return results


def main(argv: typing.Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional regression for throughput metrics "
             "(default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--wall-tolerance", type=float, default=DEFAULT_WALL_TOLERANCE,
        help="allowed fractional increase of the headline wall time "
             "(default 0.50 = 50%%)",
    )
    parser.add_argument(
        "--baseline", type=float, default=None,
        help=f"explicit baseline for the simulator-core {CORE_METRIC} "
             "check (default: the figure at HEAD)",
    )
    parser.add_argument(
        "--rev", default="HEAD",
        help="git revision to read baselines from (default HEAD)",
    )
    parser.add_argument(
        "--no-drift", action="store_true",
        help="skip the per-channel BER/bandwidth drift checks",
    )
    args = parser.parse_args(argv)

    results_dir = _repo_root() / RESULTS_RELDIR
    checks = build_checks(results_dir, args.tolerance, args.wall_tolerance)

    regressions = 0
    checked = 0
    for check in checks:
        override = (
            args.baseline
            if args.baseline is not None and CORE_METRIC in check.name
            else None
        )
        status, message = run_check(check, args.rev, override)
        label = {"ok": "ok", "regression": "REGRESSION", "skip": "skip"}[status]
        print(f"[{label}] {message}")
        if status == "regression":
            regressions += 1
        elif status == "ok":
            checked += 1

    for status, message in (
        run_batch_floor_checks(results_dir)
        + run_model_validation_checks(results_dir)
        + run_prescreen_floor_checks(results_dir)
    ):
        label = {"ok": "ok", "regression": "REGRESSION", "skip": "skip"}[status]
        print(f"[{label}] {message}")
        if status == "regression":
            regressions += 1
        elif status == "ok":
            checked += 1

    if not args.no_drift:
        for status, message in run_drift_checks(results_dir, args.rev):
            label = {"ok": "ok", "regression": "REGRESSION", "skip": "skip"}[
                status
            ]
            print(f"[{label}] {message}")
            if status == "regression":
                regressions += 1
            elif status == "ok":
                checked += 1

    if regressions:
        return 1
    if checked == 0:
        print("nothing could be checked; pass --baseline or commit a baseline")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
