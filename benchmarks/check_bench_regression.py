"""Benchmark regression guard for the simulator core.

Compares the just-measured ``engine_events_per_sec`` (written by
``bench_simulator_core.py`` into ``benchmarks/results/``) against the
figure committed at HEAD — the benchmark run overwrites the working-tree
file, so the committed baseline has to come out of git — and fails when
throughput regresses more than the allowed fraction (default 20%).

Usage (CI runs exactly this)::

    python -m pytest benchmarks/bench_simulator_core.py -q
    python benchmarks/check_bench_regression.py

Exit status 0 on pass, 1 on regression, 2 when the baseline cannot be
resolved (not a git checkout and no ``--baseline`` given).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

RESULT_RELPATH = "benchmarks/results/BENCH_simulator_core.json"
METRIC = "engine_events_per_sec"
DEFAULT_TOLERANCE = 0.20


def _repo_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent


def _rate(doc: dict) -> float:
    return float(doc["metrics"][METRIC])


def committed_baseline(rev: str = "HEAD") -> float:
    """The metric as committed at ``rev`` (the run overwrites the file)."""
    blob = subprocess.check_output(
        ["git", "show", f"{rev}:{RESULT_RELPATH}"],
        cwd=_repo_root(),
        stderr=subprocess.STDOUT,
    )
    return _rate(json.loads(blob))


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional regression (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--baseline", type=float, default=None,
        help="explicit baseline events/sec (default: the figure at HEAD)",
    )
    parser.add_argument(
        "--rev", default="HEAD",
        help="git revision to read the baseline from (default HEAD)",
    )
    args = parser.parse_args(argv)

    current_path = _repo_root() / RESULT_RELPATH
    if not current_path.exists():
        print(f"no current result at {current_path}; run the benchmark first")
        return 2
    current = _rate(json.loads(current_path.read_text()))

    if args.baseline is not None:
        baseline = args.baseline
    else:
        try:
            baseline = committed_baseline(args.rev)
        except (subprocess.CalledProcessError, FileNotFoundError) as exc:
            print(f"cannot read committed baseline ({exc}); pass --baseline")
            return 2

    floor = baseline * (1.0 - args.tolerance)
    verdict = "ok" if current >= floor else "REGRESSION"
    print(
        f"{verdict}: {METRIC} current={current:,.0f}/s "
        f"baseline={baseline:,.0f}/s floor={floor:,.0f}/s "
        f"({current / baseline:.2f}x of baseline, tolerance -{args.tolerance:.0%})"
    )
    return 0 if current >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
