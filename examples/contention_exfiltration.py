#!/usr/bin/env python3
"""The §IV contention channel end to end, including Fig. 9 calibration.

The GPU Trojan modulates ring-bus contention (bursts of LLC traffic for
1-bits, timed idling for 0-bits, paced with the §III-B SLM timer) while
the CPU Spy pointer-chases a set-disjoint buffer and timestamps probe
groups.  Decoding is offline run-length recovery — no pre-agreed cache
sets needed.

    python examples/contention_exfiltration.py
"""

from repro import (
    ContentionChannel,
    ContentionChannelConfig,
    bits_to_bytes,
    bytes_to_bits,
)


def main() -> None:
    secret = b"ring bus leak"
    payload = bytes_to_bits(secret)

    config = ContentionChannelConfig(
        cpu_buffer_paper_bytes=512 * 1024,  # the paper's spy buffer
        gpu_buffer_paper_bytes=2 * 1024 * 1024,  # best Fig. 10 point
        n_workgroups=2,
    )
    channel = ContentionChannel(config)

    print("Calibrating the iteration factor (Fig. 9)...")
    calibration = channel.calibrate(seed=7)
    print(
        f"  GPU pass {calibration.gpu_pass_fs / 1e9:.2f} us, "
        f"slot {calibration.slot_fs / 1e9:.2f} us, "
        f"I_F = {calibration.iteration_factor}"
    )

    print(f"Transmitting {len(payload)} bits over the ring bus...")
    result = channel.transmit(bits=payload, seed=7, calibration=calibration)
    recovered = bits_to_bytes(result.received[: len(payload)])

    print(f"Spy decoded: {recovered!r}")
    print(f"Channel    : {result.summary()}")
    print(
        f"Decoder saw {result.meta['n_samples']} probe-group samples; "
        f"threshold {result.meta['threshold_cycles']:.0f} cycles"
    )


if __name__ == "__main__":
    main()
