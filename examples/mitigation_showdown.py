#!/usr/bin/env python3
"""§VI mitigations vs both covert channels.

Runs each channel unprotected and then under its §VI defense:

* LLC way partitioning vs the PRIME+PROBE channel,
* ring TDM traffic isolation vs the contention channel,
* SLM timer fuzzing vs the CPU→GPU direction (which must trust the
  custom timer for its data decisions).

    python examples/mitigation_showdown.py
"""

from repro import (
    ChannelDirection,
    ContentionChannel,
    ContentionChannelConfig,
    LLCChannel,
    LLCChannelConfig,
    llc_way_partition,
    ring_tdm,
    timer_fuzzing,
)
from repro.analysis.render import format_table
from repro.errors import ChannelProtocolError


def llc_row(label, config, n_bits=32):
    try:
        result = LLCChannel(config).transmit(n_bits=n_bits, seed=99)
        return (label, f"{result.bandwidth_kbps:.1f}",
                f"{result.error_percent:.1f}%")
    except ChannelProtocolError:
        return (label, "-", "channel dead")


def contention_row(label, mitigation):
    channel = ContentionChannel(ContentionChannelConfig(mitigation=mitigation))
    calibration = channel.calibrate(seed=99)
    try:
        result = channel.transmit(n_bits=48, seed=99, calibration=calibration)
        return (label, f"{result.bandwidth_kbps:.1f}",
                f"{result.error_percent:.1f}%")
    except ChannelProtocolError:
        return (label, "-", "channel dead")


def main() -> None:
    rows = [
        llc_row("LLC P+P, unprotected", LLCChannelConfig()),
        llc_row("LLC P+P, way partitioning",
                LLCChannelConfig(mitigation=llc_way_partition())),
        llc_row("LLC P+P CPU→GPU, unprotected",
                LLCChannelConfig(direction=ChannelDirection.CPU_TO_GPU)),
        llc_row("LLC P+P CPU→GPU, timer fuzzing",
                LLCChannelConfig(direction=ChannelDirection.CPU_TO_GPU,
                                 mitigation=timer_fuzzing())),
        contention_row("contention, unprotected", None),
        contention_row("contention, ring TDM", ring_tdm()),
    ]
    print(format_table(["configuration", "kb/s", "error"], rows))
    print(
        "\nA dead channel means the handshake starved; ~50% error means the"
        "\nbits carry no information — either way the §VI defense worked."
    )


if __name__ == "__main__":
    main()
