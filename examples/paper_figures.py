#!/usr/bin/env python3
"""Regenerate every evaluation figure of the paper in one run.

Prints the measured series next to the values the paper reports.  This is
the same machinery the ``benchmarks/`` harness uses, packaged as a single
script.  Expect a few minutes of runtime.

    python examples/paper_figures.py [--quick]
"""

import sys

from repro.analysis import figures
from repro.analysis.render import format_table


def main(quick: bool = False) -> None:
    seeds = (1,) if quick else (1, 2, 3)
    bits = 48 if quick else 96

    print("Fig. 4 — custom timer characterization")
    fig4 = figures.fig4_timer_characterization(samples=16 if quick else 24)
    print(format_table(["counter threads", "level", "ticks", "stdev"], fig4.rows()))
    print(f"paper: {fig4.paper['claim']}\n")

    print("Fig. 7 — LLC channel bandwidth by L3 eviction strategy")
    fig7 = figures.fig7_llc_strategies(n_bits=bits, seeds=seeds[:2])
    print(format_table(["strategy", "direction", "kb/s", "err %"], fig7.rows()))
    for key, value in fig7.paper.items():
        print(f"paper {key}: {value}")
    print()

    print("Fig. 8 — error and bandwidth vs number of LLC sets")
    fig8 = figures.fig8_llc_sets(set_counts=(1, 2, 4), n_bits=bits, seeds=seeds)
    print(format_table(["sets", "direction", "kb/s", "err %"], fig8.rows()))
    for key, value in fig8.paper.items():
        print(f"paper {key}: {value}")
    print()

    print("Fig. 9 — iteration factor vs GPU buffer size")
    fig9 = figures.fig9_iteration_factor()
    print(format_table(["gpu buffer", "I_F", "pass us", "slot us"], fig9.rows()))
    print(f"paper: {fig9.paper['claim']}\n")

    print("Fig. 10 — contention channel sweep")
    fig10 = figures.fig10_contention_sweep(
        workgroup_counts=(1, 2, 4) if quick else (1, 2, 4, 8),
        n_bits=bits,
        seeds=seeds,
    )
    print(format_table(
        ["WGs", "buffer", "kb/s", "err %", "err ±", "I_F"], fig10.rows()
    ))
    best = fig10.best()
    print(
        f"best point: {best.n_workgroups} WGs @ "
        f"{best.gpu_buffer_paper_bytes // (1024 * 1024)} MB -> "
        f"{best.aggregate.error_percent:.2f}% error "
        f"(paper: 0.82% at 2 WGs / 2 MB)\n"
    )

    print("§V headline")
    head = figures.headline(n_bits=bits, seeds=seeds)
    print(format_table(["channel", "kb/s", "err %"], head.rows()))
    for key, value in head.paper.items():
        print(f"paper {key}: {value}")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
