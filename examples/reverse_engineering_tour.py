#!/usr/bin/env python3
"""A tour of the §III reverse-engineering toolkit.

Reproduces, on the simulated machine and via timing alone:

1. Fig. 4 — the custom SLM-counter timer separating L3 / LLC / memory;
2. the §III-D inclusiveness experiment (the GPU L3 is *not* inclusive);
3. §III-D geometry recovery (placement bits, ways, pLRU rounds);
4. §III-C slice-hash recovery from one 1 GB huge page.

    python examples/reverse_engineering_tour.py
"""

from repro.analysis.render import format_table
from repro.config import SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK, kaby_lake
from repro.core.reverse_engineering import (
    characterize_timer,
    check_l3_inclusiveness,
    discover_l3_geometry,
    recover_slice_hash,
)
from repro.soc.slice_hash import SliceHash


def main() -> None:
    print("1) Custom timer characterization (Fig. 4)")
    timer = characterize_timer(samples=20)
    print(format_table(
        ["level", "mean ticks", "stdev"],
        [(lvl, round(m, 1), round(s, 2)) for lvl, m, s in timer.rows()],
    ))
    print(f"   levels separated: {timer.levels_separated}\n")

    print("2) Is the LLC inclusive of the GPU L3? (§III-D)")
    inclusiveness = check_l3_inclusiveness(n_lines=12)
    print(
        f"   re-access after CPU clflush: {inclusiveness.mean_reaccess:.1f} ticks "
        f"(L3-hit level {inclusiveness.l3_hit_level_ticks:.1f}, "
        f"miss level {inclusiveness.miss_level_ticks:.1f})"
    )
    print(f"   inclusive: {inclusiveness.inclusive}  -> eviction must happen "
          "from the GPU side\n")

    print("3) GPU L3 geometry (§III-D)")
    geometry = discover_l3_geometry()
    print(
        f"   placement bits: {geometry.placement_bits} (paper: 16)\n"
        f"   ways per set  : {geometry.ways}\n"
        f"   stable pLRU eviction after {geometry.eviction_rounds} sweep(s) "
        f"(paper: >= 5)\n"
    )

    print("4) LLC slice hash recovery (§III-C, Eq. (1)/(2))")
    report = recover_slice_hash(pool_size=120, verify_offsets=16)
    print(
        f"   slices found: {report.n_slices}; probed physical bits "
        f"{min(report.probed_bits)}..{max(report.probed_bits)}; "
        f"self-check accuracy {report.verification_accuracy:.2f}"
    )
    truth = SliceHash([SLICE_HASH_S0_MASK, SLICE_HASH_S1_MASK], 4)
    config = kaby_lake()
    period = config.llc.line_bytes << config.llc.set_index_bits
    offsets = [unit * period for unit in range(0, 4096, 61)]
    matches = report.partition_matches(lambda o: truth.slice_of(o), offsets)
    print(f"   partition matches Eq. (1)/(2) on held-out addresses: {matches}")


if __name__ == "__main__":
    main()
