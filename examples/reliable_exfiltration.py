#!/usr/bin/env python3
"""Reliable exfiltration: FEC framing over the raw covert channel.

The raw channels run at a few percent bit error (§V).  This example runs
the LLC channel in its *least* reliable configuration (a single LLC set
per role, the paper's 7-9% regime), wraps the secret in the
Hamming(7,4)+CRC framing from ``repro.core.framing``, and shows the
receiver recovering the exact payload — plus the information-theoretic
cost of the redundancy.

    python examples/reliable_exfiltration.py
"""

from repro import LLCChannel, LLCChannelConfig
from repro.analysis.capacity import capacity_of
from repro.core.framing import decode_frame, encode_frame, frame_overhead_ratio


def main() -> None:
    secret = b"meet at dawn"
    framed = encode_frame(secret)
    print(
        f"Secret: {secret!r} -> {len(framed)} channel bits "
        f"({frame_overhead_ratio(len(secret)):.2f}x overhead)"
    )

    channel = LLCChannel(LLCChannelConfig(n_sets_per_role=1))
    for attempt in range(1, 6):
        result = channel.transmit(bits=framed, seed=40 + attempt)
        print(f"Attempt {attempt}: {result.summary()}")
        print(f"  capacity view: {capacity_of(result).summary()}")
        report = decode_frame(result.received)
        print(
            f"  FEC corrected {report.corrected_bits} bit(s); "
            f"CRC {'ok' if report.crc_ok else 'FAILED'}"
        )
        if report.delivered:
            print(f"Delivered intact on attempt {attempt}: {report.payload!r}")
            break
        print("  frame rejected -> retransmit")
    else:
        print("All attempts failed; widen the FEC or add redundancy.")


if __name__ == "__main__":
    main()
