#!/usr/bin/env python3
"""Quickstart: send a covert message from the iGPU to the CPU.

Runs the paper's headline attack — a PRIME+PROBE covert channel over the
shared LLC of a simulated integrated CPU-GPU system — and decodes an
ASCII message on the receiving side.

    python examples/quickstart.py
"""

from repro import (
    LLCChannel,
    LLCChannelConfig,
    bits_to_bytes,
    bytes_to_bits,
)


def main() -> None:
    secret = b"leaky buddies!"
    payload = bytes_to_bits(secret)
    print(f"Trojan (GPU kernel) will transmit {len(payload)} bits: {secret!r}")

    channel = LLCChannel(LLCChannelConfig())
    result = channel.transmit(bits=payload, seed=2026)

    recovered = bits_to_bytes(result.received)
    print(f"Spy (CPU process) received : {recovered!r}")
    print(f"Channel                    : {result.summary()}")
    print(f"Pre-agreed LLC sets        : {result.meta['n_sets_per_role']} per role")
    print(f"L3 eviction strategy       : {result.meta['strategy']}")
    if recovered == secret:
        print("Message recovered intact — the components leaked.")
    else:
        errors = result.error_percent
        print(f"Message arrived with {errors:.1f}% bit errors.")


if __name__ == "__main__":
    main()
