#!/usr/bin/env python3
"""Half-duplex covert "chat" between the iGPU and the CPU (§II-B).

The paper implements the channel in both directions; this example runs a
framed request/response exchange — GPU→CPU then CPU→GPU — with FEC and
retransmission, over the same pre-agreed LLC sets.

    python examples/bidirectional_chat.py
"""

from repro.core.llc_channel import LLCChannelConfig
from repro.core.llc_channel.bidirectional import BidirectionalLink


def main() -> None:
    link = BidirectionalLink(LLCChannelConfig())
    request = b"key?"
    response = b"0xDEADBEEF"
    print(f"GPU trojan asks : {request!r}")
    print(f"CPU trojan holds: {response!r}")

    exchange = link.exchange_messages(request, response, seed=17)
    print(f"\nGPU→CPU leg: {exchange.raw.forward.summary()}")
    print(f"CPU→GPU leg: {exchange.raw.backward.summary()}")
    print(
        f"FEC corrections: {exchange.gpu_to_cpu.corrected_bits} forward, "
        f"{exchange.cpu_to_gpu.corrected_bits} backward"
    )
    if exchange.both_delivered:
        print(
            f"\nDelivered both ways: CPU received {exchange.gpu_to_cpu.payload!r}, "
            f"GPU received {exchange.cpu_to_gpu.payload!r}"
        )
    else:
        print("\nA leg failed CRC after retries — increase max_attempts.")


if __name__ == "__main__":
    main()
